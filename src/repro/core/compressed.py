"""BOND over 8-bit approximated fragments (Section 7.4, Figure 9, Table 4).

The approximation idea of the VA-file composes with BOND: run the
branch-and-bound filter on small (1 byte per coefficient) quantised fragments
and refine the surviving candidates on the exact vectors.  Because every
quantised value comes with a per-cell error interval, the filter accumulates
*interval* partial scores — a lower and an upper bound per candidate — and
prunes with the query-only bounds (Hq for histogram intersection, the
farthest-corner bound for Euclidean distance), so no true top-k member can
ever be discarded.

The refinement step fetches the exact vectors of the survivors from the
underlying :class:`~repro.storage.decomposed.DecomposedStore` and computes
their exact scores; its cost is proportional to the number of candidates the
filter left over, which is what Table 4 reports ("filter step" versus
"refinement step").

Execution engines
-----------------
Like :class:`~repro.core.bond.BondSearcher`, the compressed searcher offers
two engines with bit-for-bit identical results:

* ``"fused"`` (default) processes one pruning period at a time: the period's
  m code columns arrive in a single :meth:`~repro.storage.compressed.CompressedStore.code_columns`
  call and one interval kernel from :mod:`repro.kernels.interval` dequantises
  and accumulates all m (lower, upper) contribution columns inside a reusable
  workspace;
* ``"loop"`` is the seed per-dimension path, kept as the reference
  implementation and benchmark baseline.

For multi-query workloads, :meth:`CompressedBondSearcher.search_batch`
executes a whole batch of queries concurrently, sharing each compressed
fragment read across every live query (see
:class:`~repro.core.batch.CompressedBatchEngine`).
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro._compat import apply_legacy_positionals
from repro.core.batch import CompressedBatchEngine, CompressedQueryRun
from repro.core.ordering import DecreasingQueryOrdering, DimensionOrdering
from repro.core.planner import FixedPeriodSchedule, PruningSchedule
from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.errors import QueryError
from repro.kernels.interval import (
    IntervalBlockKernel,
    IntervalWorkspace,
    interval_kernel_for,
    provably_zero_dimensions,
)
from repro.metrics.base import Metric
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean
from repro.storage.compressed import CompressedStore


def contribution_interval(
    metric: Metric,
    lower_values: np.ndarray,
    upper_values: np.ndarray,
    query_value: float,
    *,
    dimension: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bounds on one dimension's contribution given per-value intervals.

    For histogram intersection ``min(h, q)`` is monotone in ``h``, so the
    interval maps directly.  For (weighted) squared Euclidean the contribution
    ``w (h - q)^2`` is not monotone: it is zero when the query lies inside the
    interval and otherwise attains its extremes at the interval endpoints.
    """
    if isinstance(metric, HistogramIntersection):
        return (
            metric.contributions(lower_values, query_value, dimension=dimension),
            metric.contributions(upper_values, query_value, dimension=dimension),
        )
    at_lower = metric.contributions(lower_values, query_value, dimension=dimension)
    at_upper = metric.contributions(upper_values, query_value, dimension=dimension)
    upper = np.maximum(at_lower, at_upper)
    inside = (lower_values <= query_value) & (query_value <= upper_values)
    lower = np.where(inside, 0.0, np.minimum(at_lower, at_upper))
    return lower, upper


class CompressedBondSearcher:
    """Branch-and-bound filter over quantised fragments plus exact refinement.

    Parameters
    ----------
    store:
        The compressed store (quantised fragments plus the exact store used
        for refinement).
    metric:
        Similarity or distance metric.  Defaults to histogram intersection.
    ordering:
        Dimension-ordering strategy (default: decreasing query value).
    schedule:
        Pruning-period schedule (default: every 8 dimensions, the paper's m).
    engine:
        ``"fused"`` (default) runs the interval block kernels; ``"loop"`` runs
        the original per-dimension reference path.  Both return bitwise
        identical results at identical accounted cost.

    Notes
    -----
    A searcher owns a reusable kernel workspace, so one instance must not run
    concurrent searches from multiple threads; create one searcher per thread
    (they can share the store).
    """

    def __init__(
        self,
        store: CompressedStore,
        *legacy,
        metric: Metric | None = None,
        ordering: DimensionOrdering | None = None,
        schedule: PruningSchedule | None = None,
        engine: str = "fused",
    ) -> None:
        (metric,) = apply_legacy_positionals(
            "CompressedBondSearcher(store, *, metric=...)", legacy, ("metric",), (metric,)
        )
        if engine not in ("fused", "loop"):
            raise QueryError("engine must be 'fused' or 'loop'")
        self._store = store
        self._metric = metric if metric is not None else HistogramIntersection()
        self._ordering = ordering if ordering is not None else DecreasingQueryOrdering()
        self._schedule = schedule if schedule is not None else FixedPeriodSchedule(8)
        self._engine = engine
        self._interval_kernel = interval_kernel_for(self._metric)
        self._workspace = IntervalWorkspace()
        # Once the candidate set has shrunk below this fraction the filter
        # fetches only the candidates' codes instead of whole fragments.
        self._positional_threshold = 0.05 * self._store.cardinality

    @property
    def store(self) -> CompressedStore:
        """The compressed store the filter runs on."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    @property
    def engine(self) -> str:
        """The execution engine in use (``"fused"`` or ``"loop"``)."""
        return self._engine

    @property
    def interval_kernel(self) -> IntervalBlockKernel:
        """The fused interval kernel matching the metric."""
        return self._interval_kernel

    def search(self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None) -> SearchResult:
        """Return the exact k nearest neighbours via filter-and-refine."""
        started = time.perf_counter()
        run = self._plan(0, query, k, trace=trace)
        cost = self._store.cost
        checkpoint = cost.checkpoint()

        if self._engine == "loop":
            self._run_loop(run)
        else:
            while not run.finished:
                self._advance(run, run.next_block(), charge_storage=True)

        oids, scores = self._refine(run.query, run.oids, run.order, run.k)
        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=run.processed,
            full_scan_dimensions=run.full_scan_dimensions,
            candidate_trace=run.trace,
            cost=cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a whole batch of queries, sharing compressed fragment reads.

        Every query runs the exact single-query filter — its own dimension
        order, pruning schedule, candidate list and interval scores — so each
        returned :class:`~repro.core.result.SearchResult` is bitwise identical
        to what :meth:`search` would return for that query.  Batch rounds
        always execute through the fused interval kernels regardless of the
        ``engine`` setting (the per-dimension loop exists as a single-query
        reference; its batched timing would not describe any real engine).  Per execution
        round, the union of all full-scanning queries' next fragment blocks is
        read (and charged) once for the whole batch; queries that have shrunk
        below the positional threshold fetch only their own candidates' codes
        (see :class:`~repro.core.batch.CompressedBatchEngine`).

        Parameters
        ----------
        queries:
            ``(batch, N)`` matrix of query vectors (a single 1-D query is
            accepted and treated as a batch of one).
        k:
            Number of neighbours per query; clamped to the collection size.

        Returns
        -------
        A :class:`~repro.core.result.BatchSearchResult` with one result per
        query in submission order; cost and wall-clock time are accounted at
        batch level because fragment reads are shared.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        cost = self._store.cost
        checkpoint = cost.checkpoint()
        engine = CompressedBatchEngine(self, query_matrix, k)
        results = engine.run()
        return BatchSearchResult(
            results=results,
            cost=cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- shared per-query plumbing (also used by the batch engine) ---------------

    def _plan(
        self, index: int, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> CompressedQueryRun:
        """Validate one query and set up its independent filter state."""
        query = self._metric.validate_query(query)
        if query.shape[0] != self._store.dimensionality:
            raise QueryError("query dimensionality does not match the store")
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)

        weights = self._metric.weights if isinstance(self._metric, WeightedSquaredEuclidean) else None
        order = self._ordering.order(query, weights=weights)
        if weights is not None:
            order = order[weights[order] > 0.0]

        # Query-side early-out: dimensions whose interval contribution is
        # provably zero for every candidate add 0.0 to both accumulators, so
        # the engines skip their fetch and math entirely (results unchanged).
        zero_mask = provably_zero_dimensions(
            self._metric,
            self._store.minimums,
            self._store.maximums,
            self._store.cell_widths,
            query,
        )
        # Adaptive schedules carry per-search state, so every run gets its
        # own (shallow — schedules hold only scalar configuration) copy.
        schedule = copy.copy(self._schedule)
        run = CompressedQueryRun(
            index=index,
            query=query,
            k=k,
            order=order,
            weights=weights,
            schedule=schedule,
            oids=np.arange(self._store.cardinality, dtype=np.int64),
            score_lower=np.zeros(self._store.cardinality, dtype=np.float64),
            score_upper=np.zeros(self._store.cardinality, dtype=np.float64),
            zero_dimensions=zero_mask if bool(zero_mask.any()) else None,
            trace=trace if trace is not None else PruningTrace(),
        )
        run.trace.record(0, len(run.oids))
        run.next_attempt = schedule.first_batch(run.total_dimensions)
        return run

    def _is_positional(self, run: CompressedQueryRun) -> bool:
        """Whether a run fetches candidate codes instead of whole fragments."""
        return run.oids.shape[0] <= self._positional_threshold

    def _active_block(
        self, run: CompressedQueryRun, block_dimensions: np.ndarray
    ) -> np.ndarray:
        """The block's dimensions minus the run's provably-zero ones.

        Skipped dimensions still count as *processed* (they sit in the
        dimension order and the pruning bounds treat them as consumed), but
        they are never fetched, dequantised, accumulated or charged — their
        contribution is exactly 0.0 for every candidate, so the accumulated
        floats are unchanged.
        """
        if run.zero_dimensions is None:
            return block_dimensions
        return block_dimensions[~run.zero_dimensions[block_dimensions]]

    def _advance(
        self,
        run: CompressedQueryRun,
        block_dimensions: np.ndarray,
        *,
        charge_storage: bool,
    ) -> None:
        """Fold one pruning period into a run's interval scores with one
        kernel call, then attempt its prune.

        Processes the same dimensions, accumulates the same (lower, upper)
        contributions in the same left-to-right order and prunes with the same
        bounds as the per-dimension reference loop, so results and accounted
        cost are bitwise identical — each period just costs one storage call
        and one kernel call instead of m Python-level round trips.
        ``charge_storage=False`` lets the batch engine charge one shared read
        for a whole round instead.
        """
        store = self._store
        count = run.oids.shape[0]
        active = self._active_block(run, block_dimensions)
        positional = self._is_positional(run)
        if count == store.cardinality:
            if active.size:
                # Full-collection phase: stream the whole code columns in
                # place, no gather needed.
                code_columns = store.code_columns(active, charge=charge_storage)
                self._fold_full_columns(run, active, code_columns, 0, count)
        elif active.size:
            # Restricted phase: gather the candidates' codes (1 byte each —
            # bitwise identical to the loop's slice-after-dequantise but 8x
            # lighter per value) into one row block and process the whole
            # pruning period with a few broadcast expressions.
            if charge_storage:
                charge = "positional" if positional else "full"
            else:
                charge = None
            code_rows = store.code_row_block(active, run.oids, charge=charge)
            self._interval_kernel.accumulate_row_block(
                code_rows,
                store.minimums[active],
                store.cell_widths[active],
                run.query[active],
                active,
                run.score_lower,
                run.score_upper,
                self._workspace,
            )
        self._finish_block(run, block_dimensions, active, positional=positional)

    def _fold_full_columns(
        self,
        run: CompressedQueryRun,
        active: np.ndarray,
        code_columns: list[np.ndarray],
        start: int,
        stop: int,
    ) -> None:
        """One full-phase kernel call over the row range ``[start, stop)``.

        The tile-round engine calls this once per row tile (the interval
        kernels are elementwise per row, so tiling the rows changes nothing
        about the accumulated floats); the single-query path calls it once
        for the whole collection.
        """
        self._interval_kernel.accumulate_block(
            [column[start:stop] for column in code_columns],
            self._store.minimums[active],
            self._store.cell_widths[active],
            run.query[active],
            active,
            run.score_lower[start:stop],
            run.score_upper[start:stop],
            self._workspace,
        )

    def _finish_block(
        self,
        run: CompressedQueryRun,
        block_dimensions: np.ndarray,
        active: np.ndarray,
        *,
        positional: bool,
    ) -> None:
        """Post-scan bookkeeping of one pruning period: charges, counters and
        the prune attempt.  Shared by :meth:`_advance` and the tile-round
        engine, so both account and prune identically."""
        store = self._store
        if not positional:
            run.full_scan_dimensions += int(active.shape[0])
        store.cost.charge_arithmetic(
            2 * run.oids.shape[0] * int(active.shape[0]) * self._metric.arithmetic_ops_per_value()
        )
        run.processed += int(block_dimensions.shape[0])

        if run.processed >= run.next_attempt or run.processed == run.total_dimensions:
            self._prune(run)

    def _finalize(self, run: CompressedQueryRun) -> bool:
        """Complete a finished run's refinement step and build its result."""
        if run.result is not None:
            return True
        if not run.finished:
            return False
        oids, scores = self._refine(run.query, run.oids, run.order, run.k)
        run.result = SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=run.processed,
            full_scan_dimensions=run.full_scan_dimensions,
            candidate_trace=run.trace,
        )
        return True

    # -- execution engines -------------------------------------------------------

    def _run_loop(self, run: CompressedQueryRun) -> None:
        """The seed per-dimension reference engine."""
        cost = self._store.cost
        while run.processed < run.total_dimensions and len(run.oids) > run.k:
            dimension = int(run.order[run.processed])
            if run.zero_dimensions is not None and run.zero_dimensions[dimension]:
                # Query-side early-out: the contribution is provably 0.0 for
                # every candidate — consume the dimension without touching it
                # (same skip, same accounting as the fused engine).
                run.processed += 1
                if run.processed >= run.next_attempt or run.processed == run.total_dimensions:
                    self._prune(run)
                continue
            if self._is_positional(run):
                value_lower, value_upper = self._store.bounded_fragment_for(dimension, run.oids)
            else:
                value_lower, value_upper = self._store.bounded_fragment(dimension)
                value_lower, value_upper = value_lower[run.oids], value_upper[run.oids]
                run.full_scan_dimensions += 1
            contribution_lower, contribution_upper = contribution_interval(
                self._metric, value_lower, value_upper, run.query[dimension], dimension=dimension
            )
            cost.charge_arithmetic(2 * len(run.oids) * self._metric.arithmetic_ops_per_value())
            run.score_lower += contribution_lower
            run.score_upper += contribution_upper
            run.processed += 1

            if run.processed >= run.next_attempt or run.processed == run.total_dimensions:
                self._prune(run)

    # -- internals --------------------------------------------------------------

    def _prune(self, run: CompressedQueryRun) -> None:
        """One pruning checkpoint: drop hopeless candidates, record the trace
        point and plan the next attempt."""
        before = run.oids.shape[0]
        keep = self._prune_mask(
            run.query, run.order, run.processed, run.score_lower, run.score_upper, run.k, run.weights
        )
        run.oids = run.oids[keep]
        run.score_lower = run.score_lower[keep]
        run.score_upper = run.score_upper[keep]
        run.trace.record(run.processed, len(run.oids))
        run.next_attempt = run.processed + run.schedule.next_batch(
            dimensionality=run.total_dimensions,
            dimensions_processed=run.processed,
            candidates_before=before,
            candidates_after=len(run.oids),
        )

    def _prune_mask(
        self,
        query: np.ndarray,
        order: np.ndarray,
        processed: int,
        score_lower: np.ndarray,
        score_upper: np.ndarray,
        k: int,
        weights: np.ndarray | None,
    ) -> np.ndarray:
        """Query-only pruning over interval partial scores."""
        cost = self._store.cost
        count = score_lower.shape[0]
        if count <= k:
            return np.ones(count, dtype=bool)
        remaining = order[processed:]
        remaining_query = query[remaining]
        cost.charge_heap(count)
        cost.charge_comparisons(count)

        # The test direction follows the accumulated contributions, not the
        # metric kind (EuclideanSimilarity accumulates distance-valued
        # intervals and applies its similarity transform only at refinement).
        if not self._metric.contributions_are_distances:
            remaining_mass = float(remaining_query.sum())
            guaranteed = score_lower                     # remaining contributes at least 0
            optimistic = score_upper + remaining_mass    # and at most T(q+)
            kappa = float(np.partition(guaranteed, count - k)[count - k])
            return optimistic >= kappa
        # Worst case of each remaining dimension: the farthest corner of the
        # dimension's *stored value range* [minimum, maximum].  Hard-coding
        # the unit-hypercube corner max(q, 1-q)^2 here would under-estimate
        # the worst case on data outside [0, 1] and could prune true top-k
        # members (false dismissals).
        remaining_minimums = self._store.minimums[remaining]
        remaining_maximums = self._store.maximums[remaining]
        edge = np.maximum(remaining_query - remaining_minimums, remaining_maximums - remaining_query)
        if weights is None:
            corner = float(np.sum(edge * edge))
        else:
            corner = float(np.sum(weights[remaining] * (edge * edge)))
        guaranteed = score_upper + corner                # worst case for the candidate
        optimistic = score_lower                         # best case: remaining contributes 0
        kappa = float(np.partition(guaranteed, k - 1)[k - 1])
        return optimistic <= kappa

    def _refine(
        self,
        query: np.ndarray,
        oids: np.ndarray,
        order: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact scores of the filter survivors from the exact store."""
        if oids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        exact = self._store.exact
        vectors = exact.gather_matrix(oids)
        scores = self._metric.score(vectors, query)
        exact.cost.charge_arithmetic(vectors.size * self._metric.arithmetic_ops_per_value())
        best = self._metric.best_first(scores)[:k]
        return oids[best], scores[best]
