"""Sequential-scan baselines (Algorithm 1; SSH and SSE in Section 7.4).

The baseline the paper measures BOND against is an optimised sequential scan
of a single horizontal table: for every vector it computes the complete
similarity (or distance) to the query and maintains a heap of the k best
matches seen so far.  The histogram-intersection and Euclidean versions are
called SSH and SSE.

Footnote 6 describes a "more sophisticated" scan that regularly compares the
partial score of the current vector against the k-th best score found so far
and abandons the vector once it cannot reach it; that variant turned out to
be *slower* on average because of the extra comparisons and because a
row-ordered scan cannot choose to see the promising dimensions first.
:class:`PartialAbandonScan` implements it so the comparison can be repeated.
"""

from __future__ import annotations

import time

import numpy as np

from repro._compat import apply_legacy_positionals
from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.errors import QueryError
from repro.metrics.base import Metric, MetricKind
from repro.metrics.histogram import HistogramIntersection
from repro.storage.rowstore import RowStore


class SequentialScan:
    """Algorithm 1: full scan with a k-best heap (the SSH / SSE baselines)."""

    def __init__(
        self,
        store: RowStore,
        *legacy,
        metric: Metric | None = None,
        batch_size: int = 4096,
    ) -> None:
        (metric,) = apply_legacy_positionals(
            "SequentialScan(store, *, metric=...)", legacy, ("metric",), (metric,)
        )
        self._store = store
        self._metric = metric if metric is not None else HistogramIntersection()
        self._batch_size = batch_size

    @property
    def store(self) -> RowStore:
        """The row store being scanned."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    def search(
        self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> SearchResult:
        """Return the k nearest neighbours of ``query`` by scanning everything.

        Implemented as a batch of one so there is exactly one copy of the
        scan loop; the per-query result inherits the batch's cost account and
        wall-clock time.  ``trace`` optionally receives the (trivial) pruning
        curve of the scan — nothing is ever pruned — so the scan satisfies
        the uniform :class:`repro.api.Searcher` signature.
        """
        started = time.perf_counter()
        query = self._metric.validate_query(query)
        batch = self.search_batch(query[None, :], k)
        result = batch[0]
        if trace is not None:
            for dimensions, remaining in zip(*result.candidate_trace.as_arrays()):
                trace.record(int(dimensions), int(remaining))
            result.candidate_trace = trace
        result.cost = batch.cost
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a batch of queries with a single pass over the table.

        The scan is the shared resource: every row batch is read (and
        charged) once and scored against all queries before the next batch is
        fetched, so the table crosses the storage boundary once per *batch*
        instead of once per query.  Scoring and heap maintenance run per
        query exactly as in :meth:`search`, so each per-query result is
        bitwise identical to the single-query scan.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        validated = [self._metric.validate_query(query) for query in query_matrix]
        for query in validated:
            if query.shape[0] != self._store.dimensionality:
                raise QueryError(
                    f"query has {query.shape[0]} dimensions, the store has "
                    f"{self._store.dimensionality}"
                )
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)
        cost_checkpoint = self._store.cost.checkpoint()

        batch_size = len(validated)
        best_oids: list[np.ndarray | None] = [None] * batch_size
        best_scores: list[np.ndarray | None] = [None] * batch_size
        for oids, rows in self._store.scan_rows(self._batch_size):
            # One row batch, read once, scored against every query.
            for position, query in enumerate(validated):
                scores = self._metric.score(rows, query)
                self._store.cost.charge_arithmetic(
                    rows.size * self._metric.arithmetic_ops_per_value()
                )
                self._store.cost.charge_heap(rows.shape[0])
                if best_oids[position] is None:
                    best_oids[position], best_scores[position] = oids, scores
                else:
                    best_oids[position] = np.concatenate([best_oids[position], oids])
                    best_scores[position] = np.concatenate([best_scores[position], scores])
                if best_scores[position].shape[0] > k:
                    order = self._metric.best_first(best_scores[position])[:k]
                    best_oids[position] = best_oids[position][order]
                    best_scores[position] = best_scores[position][order]

        results = []
        for position in range(batch_size):
            oids, scores = best_oids[position], best_scores[position]
            assert oids is not None and scores is not None
            order = self._metric.best_first(scores)
            trace = PruningTrace()
            trace.record(self._store.dimensionality, self._store.cardinality)
            results.append(
                SearchResult(
                    oids=oids[order][:k],
                    scores=scores[order][:k],
                    dimensions_processed=self._store.dimensionality,
                    full_scan_dimensions=self._store.dimensionality,
                    candidate_trace=trace,
                )
            )
        return BatchSearchResult(
            results=results,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )


class PartialAbandonScan:
    """The footnote-6 variant: abandon a vector once it cannot reach the top k.

    The scan processes vectors one by one; every ``check_period`` dimensions
    it compares the vector's best achievable score against the k-th best
    complete score found so far and abandons the vector when it cannot win.
    The bound used is the trivial one of criterion Hq / Eq (the remaining
    dimensions can contribute at most ``T(q⁺)`` for histogram intersection,
    at least 0 for distances), because a row-ordered scan has no per-vector
    bookkeeping to do better.
    """

    def __init__(
        self,
        store: RowStore,
        *legacy,
        metric: Metric | None = None,
        check_period: int = 16,
    ) -> None:
        (metric,) = apply_legacy_positionals(
            "PartialAbandonScan(store, *, metric=...)", legacy, ("metric",), (metric,)
        )
        if check_period < 1:
            raise QueryError("check_period must be at least 1")
        self._store = store
        self._metric = metric if metric is not None else HistogramIntersection()
        self._check_period = check_period

    @property
    def store(self) -> RowStore:
        """The row store being scanned."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    def search(
        self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> SearchResult:
        """Return the k nearest neighbours, abandoning hopeless vectors early."""
        started = time.perf_counter()
        query = self._metric.validate_query(query)
        if query.shape[0] != self._store.dimensionality:
            raise QueryError("query dimensionality does not match the store")
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)
        cost_checkpoint = self._store.cost.checkpoint()
        similarity = self._metric.kind is MetricKind.SIMILARITY

        dimensionality = self._store.dimensionality
        # Remaining-contribution upper bound per prefix length (suffix sums of
        # the query mass for similarities; zero lower bound for distances).
        if similarity:
            suffix_query_mass = np.concatenate([np.cumsum(query[::-1])[::-1], [0.0]])

        matrix = self._store.matrix
        best_oids: list[int] = []
        best_scores: list[float] = []
        threshold: float | None = None
        values_touched = 0
        survivors = 0

        for oid in range(self._store.cardinality):
            row = matrix[oid]
            score = 0.0
            abandoned = False
            for start in range(0, dimensionality, self._check_period):
                stop = min(start + self._check_period, dimensionality)
                block = row[start:stop]
                if similarity:
                    score += float(np.sum(np.minimum(block, query[start:stop])))
                else:
                    score += float(np.sum((block - query[start:stop]) ** 2))
                values_touched += stop - start
                if threshold is not None:
                    if similarity:
                        if score + suffix_query_mass[stop] < threshold:
                            abandoned = True
                            break
                    else:
                        if score > threshold:
                            abandoned = True
                            break
            if abandoned:
                continue
            survivors += 1
            best_oids.append(oid)
            best_scores.append(score)
            if len(best_scores) > k:
                order = self._metric.best_first(np.asarray(best_scores))[:k]
                best_oids = [best_oids[index] for index in order]
                best_scores = [best_scores[index] for index in order]
            if len(best_scores) == k:
                threshold = min(best_scores) if similarity else max(best_scores)

        self._store.cost.charge_scan(values_touched)
        self._store.cost.charge_arithmetic(values_touched * self._metric.arithmetic_ops_per_value())
        self._store.cost.charge_comparisons(values_touched // self._check_period + 1)

        order = self._metric.best_first(np.asarray(best_scores))[:k]
        oids = np.asarray([best_oids[index] for index in order], dtype=np.int64)
        scores = np.asarray([best_scores[index] for index in order], dtype=np.float64)
        trace = trace if trace is not None else PruningTrace()
        trace.record(0, self._store.cardinality)
        trace.record(self._store.dimensionality, survivors)
        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=self._store.dimensionality,
            full_scan_dimensions=self._store.dimensionality,
            candidate_trace=trace,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a batch of queries with a per-query loop.

        The partial-abandon scan keeps a per-vector running score against
        *one* threshold, so there is nothing to share between queries — the
        abandonment decision of one query tells another query nothing.  The
        batch entry point exists so the searcher satisfies the uniform
        :class:`repro.api.Searcher` protocol; each per-query result is
        exactly what :meth:`search` returns.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        cost_checkpoint = self._store.cost.checkpoint()
        results = [self.search(query, k) for query in query_matrix]
        return BatchSearchResult(
            results=results,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )
