"""BOND: Branch-and-bound ON Decomposed data (Algorithm 2).

The searcher accumulates the query's similarity (or distance) to every
surviving vector one dimension fragment at a time, in an order chosen by a
:class:`~repro.core.ordering.DimensionOrdering`.  After every batch of
dimensions (controlled by a :class:`~repro.core.planner.PruningSchedule`) it
asks the :class:`~repro.bounds.base.PruningBound` for lower/upper bounds on
every candidate's complete score and discards the candidates that can no
longer reach the top k:

* for similarity metrics, let ``kappa_min`` be the k-th largest lower bound;
  every candidate whose *upper* bound is below ``kappa_min`` is pruned
  (Algorithm 2, step 4);
* for distance metrics, let ``kappa_max`` be the k-th smallest upper bound;
  every candidate whose *lower* bound exceeds ``kappa_max`` is pruned (the
  remark after Algorithm 2).

Once the candidate set is no larger than k (or the dimensions are exhausted)
the survivors' exact scores are completed on the remaining dimensions — only
k-ish vectors wide — and the best k are returned.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.base import PartialState, PruningBound
from repro.bounds.euclidean import EvBound
from repro.bounds.histogram import HqBound
from repro.bounds.weighted import WeightedEuclideanBound
from repro.core.candidates import CandidateMode, CandidateSet
from repro.core.ordering import DecreasingQueryOrdering, DimensionOrdering
from repro.core.planner import FixedPeriodSchedule, PruningSchedule
from repro.core.result import PruningTrace, SearchResult
from repro.errors import QueryError
from repro.metrics.base import Metric, MetricKind
from repro.metrics.euclidean import SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean
from repro.storage.decomposed import DecomposedStore


def default_bound_for(metric: Metric) -> PruningBound:
    """The pruning criterion the paper recommends for each metric.

    Histogram intersection pairs with Hq (best response times in Table 3),
    the plain Euclidean metric with Ev (Eq prunes "hardly any image",
    Figure 5), and the weighted metric with the weighted bound of Appendix A.
    """
    if isinstance(metric, WeightedSquaredEuclidean):
        return WeightedEuclideanBound()
    if isinstance(metric, SquaredEuclidean):
        return EvBound()
    if isinstance(metric, HistogramIntersection):
        return HqBound()
    raise QueryError(
        f"no default pruning bound for metric {type(metric).__name__}; pass one explicitly"
    )


class BondSearcher:
    """k-NN search by branch-and-bound over a vertically decomposed store.

    Parameters
    ----------
    store:
        The decomposed collection to search.
    metric:
        Similarity or distance metric (histogram intersection, squared
        Euclidean or weighted squared Euclidean).  Defaults to histogram
        intersection.
    bound:
        Pruning criterion; defaults to the paper's recommendation for the
        metric (see :func:`default_bound_for`).
    ordering:
        Dimension-ordering strategy (default: decreasing query value).
    schedule:
        Pruning-period schedule (default: every 8 dimensions, the paper's m).
    candidate_mode:
        ``"auto"`` (bitmap first, positional after the switch-over),
        ``"bitmap"`` or ``"positional"``.
    switch_selectivity:
        Candidate fraction below which the auto mode materialises the
        candidate set.
    """

    def __init__(
        self,
        store: DecomposedStore,
        metric: Metric | None = None,
        bound: PruningBound | None = None,
        *,
        ordering: DimensionOrdering | None = None,
        schedule: PruningSchedule | None = None,
        candidate_mode: str = "auto",
        switch_selectivity: float = 0.05,
    ) -> None:
        self._store = store
        self._metric = metric if metric is not None else HistogramIntersection()
        self._bound = bound if bound is not None else default_bound_for(self._metric)
        self._ordering = ordering if ordering is not None else DecreasingQueryOrdering()
        self._schedule = schedule if schedule is not None else FixedPeriodSchedule(8)
        self._candidate_mode = candidate_mode
        self._switch_selectivity = switch_selectivity
        if self._bound.needs_remaining_value_sums:
            store.materialize_row_sums()

    # -- public API -------------------------------------------------------------

    @property
    def store(self) -> DecomposedStore:
        """The decomposed store being searched."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    @property
    def bound(self) -> PruningBound:
        """The pruning criterion in use."""
        return self._bound

    def search(self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None) -> SearchResult:
        """Return the k nearest neighbours of ``query``.

        Parameters
        ----------
        query:
            The query vector (full dimensionality of the store).
        k:
            Number of neighbours; clamped to the collection size.
        trace:
            Optional :class:`~repro.core.result.PruningTrace` to record the
            pruning curve into (also attached to the returned result).
        """
        started = time.perf_counter()
        query = self._metric.validate_query(query)
        if query.shape[0] != self._store.dimensionality:
            raise QueryError(
                f"query has {query.shape[0]} dimensions, the store has {self._store.dimensionality}"
            )
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)

        weights = self._metric.weights if isinstance(self._metric, WeightedSquaredEuclidean) else None
        dimension_order = self._ordering.order(query, weights=weights)
        if weights is not None:
            # Subspace fast path: zero-weight dimensions contribute nothing
            # and their fragments never need to be touched (Section 8.1).
            dimension_order = dimension_order[weights[dimension_order] > 0.0]

        candidates = CandidateSet(
            self._store,
            track_partial_sums=self._bound.needs_partial_value_sums,
            track_remaining_sums=self._bound.needs_remaining_value_sums,
            mode=self._candidate_mode,
            switch_selectivity=self._switch_selectivity,
        )
        trace = trace if trace is not None else PruningTrace()
        trace.record(0, len(candidates))

        cost_checkpoint = self._store.cost.checkpoint()
        total_dimensions = int(dimension_order.shape[0])
        schedule_length = self._store.dimensionality if weights is None else total_dimensions

        processed = 0
        full_scan_dimensions = 0
        next_attempt = processed + self._schedule.first_batch(schedule_length)

        while processed < total_dimensions and len(candidates) > k:
            dimension = int(dimension_order[processed])
            column = candidates.column_values(dimension)
            contributions = self._metric.contributions(column, query[dimension], dimension=dimension)
            self._store.cost.charge_arithmetic(len(column) * self._metric.arithmetic_ops_per_value())
            candidates.accumulate(contributions, column)
            if candidates.mode is CandidateMode.BITMAP:
                full_scan_dimensions += 1
            processed += 1

            if processed >= next_attempt or processed == total_dimensions:
                before = len(candidates)
                self._attempt_prune(query, dimension_order, processed, candidates, k, weights)
                trace.record(processed, len(candidates))
                next_attempt = processed + self._schedule.next_batch(
                    dimensionality=schedule_length,
                    dimensions_processed=processed,
                    candidates_before=before,
                    candidates_after=len(candidates),
                )

        final_scores = self._finish_scores(query, dimension_order, processed, candidates)
        oids, scores = self._rank(candidates.oids, final_scores, k)
        elapsed = time.perf_counter() - started

        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=processed,
            full_scan_dimensions=full_scan_dimensions,
            candidate_trace=trace,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=elapsed,
        )

    # -- internals -----------------------------------------------------------------

    def _attempt_prune(
        self,
        query: np.ndarray,
        order: np.ndarray,
        processed: int,
        candidates: CandidateSet,
        k: int,
        weights: np.ndarray | None,
    ) -> None:
        """One pruning attempt: bound every candidate and drop the hopeless ones."""
        if len(candidates) <= k:
            return
        state = PartialState(
            query=query,
            order=self._full_order(order, query.shape[0]),
            num_processed=processed,
            partial_scores=candidates.partial_scores,
            partial_value_sums=candidates.partial_value_sums,
            remaining_value_sums=candidates.remaining_value_sums,
            weights=weights,
        )
        if not self._bound.pruning_worthwhile(state):
            return
        lower, upper = self._bound.total_bounds(state)
        cost = self._store.cost
        cost.charge_arithmetic(2 * len(candidates))
        cost.charge_heap(len(candidates))
        cost.charge_comparisons(len(candidates))

        if self._metric.kind is MetricKind.SIMILARITY:
            # kappa_min: the k-th largest guaranteed (lower-bound) score.
            kappa = float(np.partition(lower, len(lower) - k)[len(lower) - k])
            keep = upper >= kappa
        else:
            # kappa_max: the k-th smallest worst-case (upper-bound) score.
            kappa = float(np.partition(upper, k - 1)[k - 1])
            keep = lower <= kappa
        candidates.prune(keep)

    def _full_order(self, order: np.ndarray, dimensionality: int) -> np.ndarray:
        """Extend a (possibly subspace-restricted) order to all dimensions.

        The pruning bounds define "remaining dimensions" as everything after
        the processed prefix; for subspace queries the zero-weight dimensions
        are appended at the end so they count as remaining but never get
        processed (their weight is zero, so they contribute nothing to the
        weighted bounds either).
        """
        if order.shape[0] == dimensionality:
            return order
        missing = np.setdiff1d(np.arange(dimensionality, dtype=np.int64), order, assume_unique=True)
        return np.concatenate([order, missing])

    def _finish_scores(
        self,
        query: np.ndarray,
        order: np.ndarray,
        processed: int,
        candidates: CandidateSet,
    ) -> np.ndarray:
        """Complete the survivors' exact scores on the unprocessed dimensions."""
        scores = candidates.partial_scores.copy()
        remaining = order[processed:]
        if remaining.shape[0] == 0 or len(candidates) == 0:
            return scores
        values = self._store.gather_matrix(candidates.oids, remaining)
        self._store.cost.charge_arithmetic(values.size * self._metric.arithmetic_ops_per_value())
        for position, dimension in enumerate(remaining):
            scores += self._metric.contributions(
                values[:, position], query[int(dimension)], dimension=int(dimension)
            )
        return scores

    def _rank(self, oids: np.ndarray, scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Best k (OIDs, scores), best first, with deterministic tie-breaks."""
        if scores.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        self._store.cost.charge_heap(scores.shape[0])
        order = self._metric.best_first(scores)
        top = order[:k]
        return oids[top], scores[top]
