"""BOND: Branch-and-bound ON Decomposed data (Algorithm 2).

The searcher accumulates the query's similarity (or distance) to every
surviving vector one dimension fragment at a time, in an order chosen by a
:class:`~repro.core.ordering.DimensionOrdering`.  After every batch of
dimensions (controlled by a :class:`~repro.core.planner.PruningSchedule`) it
asks the :class:`~repro.bounds.base.PruningBound` for lower/upper bounds on
every candidate's complete score and discards the candidates that can no
longer reach the top k:

* for similarity metrics, let ``kappa_min`` be the k-th largest lower bound;
  every candidate whose *upper* bound is below ``kappa_min`` is pruned
  (Algorithm 2, step 4);
* for distance metrics, let ``kappa_max`` be the k-th smallest upper bound;
  every candidate whose *lower* bound exceeds ``kappa_max`` is pruned (the
  remark after Algorithm 2).

Once the candidate set is no larger than k (or the dimensions are exhausted)
the survivors' exact scores are completed on the remaining dimensions — only
k-ish vectors wide — and the best k are returned.

Execution engines
-----------------
The searcher offers two engines with bit-for-bit identical results:

* ``"fused"`` (default) processes one pruning period at a time: the period's
  m fragments arrive as a single :meth:`~repro.core.candidates.CandidateSet.block_values`
  gather and one fused kernel from :mod:`repro.kernels` computes all m
  contribution columns at once, eliminating the per-dimension Python
  round trips of the original loop;
* ``"loop"`` is the seed per-dimension path, kept as the reference
  implementation and benchmark baseline.

For multi-query workloads, :meth:`BondSearcher.search_batch` executes a whole
batch of queries concurrently, sharing each fragment read across every live
query (see :mod:`repro.core.batch`).
"""

from __future__ import annotations

import time

import numpy as np

from repro._compat import apply_legacy_positionals
from repro.bounds.base import OrderStatistics, PartialState, PruningBound
from repro.bounds.euclidean import EvBound
from repro.bounds.histogram import HqBound
from repro.bounds.weighted import WeightedEuclideanBound
from repro.core.batch import BatchQueryEngine
from repro.core.candidates import CandidateMode, CandidateSet
from repro.core.ordering import DecreasingQueryOrdering, DimensionOrdering
from repro.core.planner import FixedPeriodSchedule, PruningSchedule
from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.errors import QueryError
from repro.kernels import BlockKernel, accumulate_columns, kernel_for
from repro.metrics.base import Metric, MetricKind
from repro.metrics.euclidean import SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean
from repro.storage.decomposed import DecomposedStore


def default_bound_for(metric: Metric) -> PruningBound:
    """The pruning criterion the paper recommends for each metric.

    Histogram intersection pairs with Hq (best response times in Table 3),
    the plain Euclidean metric with Ev (Eq prunes "hardly any image",
    Figure 5), and the weighted metric with the weighted bound of Appendix A.
    """
    if isinstance(metric, WeightedSquaredEuclidean):
        return WeightedEuclideanBound()
    if isinstance(metric, SquaredEuclidean):
        return EvBound()
    if isinstance(metric, HistogramIntersection):
        return HqBound()
    raise QueryError(
        f"no default pruning bound for metric {type(metric).__name__}; pass one explicitly"
    )


class BondSearcher:
    """k-NN search by branch-and-bound over a vertically decomposed store.

    Parameters
    ----------
    store:
        The decomposed collection to search.
    metric:
        Similarity or distance metric (histogram intersection, squared
        Euclidean or weighted squared Euclidean).  Defaults to histogram
        intersection.
    bound:
        Pruning criterion; defaults to the paper's recommendation for the
        metric (see :func:`default_bound_for`).
    ordering:
        Dimension-ordering strategy (default: decreasing query value).
    schedule:
        Pruning-period schedule (default: every 8 dimensions, the paper's m).
    candidate_mode:
        ``"auto"`` (bitmap first, positional after the switch-over),
        ``"bitmap"`` or ``"positional"``.
    switch_selectivity:
        Candidate fraction below which the auto mode materialises the
        candidate set.
    engine:
        ``"fused"`` (default) runs the block-scan kernels; ``"loop"`` runs
        the original per-dimension reference path.  Both return bitwise
        identical results at identical accounted cost.

    Notes
    -----
    All configuration parameters are keyword-only (the uniform
    :class:`repro.api.Searcher` construction surface); the historical
    positional shape ``BondSearcher(store, metric, bound)`` still works but
    emits a :class:`DeprecationWarning`.

    A searcher owns reusable scratch buffers (kernel workspace, pruning
    bounds), so one instance must not run concurrent searches from multiple
    threads; create one searcher per thread (they can share the store).
    """

    def __init__(
        self,
        store: DecomposedStore,
        *legacy,
        metric: Metric | None = None,
        bound: PruningBound | None = None,
        ordering: DimensionOrdering | None = None,
        schedule: PruningSchedule | None = None,
        candidate_mode: str = "auto",
        switch_selectivity: float = 0.05,
        engine: str = "fused",
    ) -> None:
        metric, bound = apply_legacy_positionals(
            "BondSearcher(store, *, metric=..., bound=...)",
            legacy,
            ("metric", "bound"),
            (metric, bound),
        )
        if engine not in ("fused", "loop"):
            raise QueryError("engine must be 'fused' or 'loop'")
        self._store = store
        self._metric = metric if metric is not None else HistogramIntersection()
        self._bound = bound if bound is not None else default_bound_for(self._metric)
        self._ordering = ordering if ordering is not None else DecreasingQueryOrdering()
        self._schedule = schedule if schedule is not None else FixedPeriodSchedule(8)
        self._candidate_mode = candidate_mode
        self._switch_selectivity = switch_selectivity
        self._engine = engine
        self._kernel = kernel_for(self._metric)
        # Reusable per-search scratch (lazily sized to the collection): the
        # full-scan workspace for the kernels and the bound/keep buffers of
        # the pruning attempts, so the hot path allocates nothing.
        self._scan_workspace = np.empty(0, dtype=np.float64)
        self._prune_lower = np.empty(0, dtype=np.float64)
        self._prune_upper = np.empty(0, dtype=np.float64)
        self._prune_keep = np.empty(0, dtype=bool)
        if self._bound.needs_remaining_value_sums:
            store.materialize_row_sums()

    # -- public API -------------------------------------------------------------

    @property
    def store(self) -> DecomposedStore:
        """The decomposed store being searched."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    @property
    def bound(self) -> PruningBound:
        """The pruning criterion in use."""
        return self._bound

    @property
    def engine(self) -> str:
        """The execution engine in use (``"fused"`` or ``"loop"``)."""
        return self._engine

    @property
    def kernel(self) -> BlockKernel:
        """The fused block kernel matching the metric."""
        return self._kernel

    def search(self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None) -> SearchResult:
        """Return the k nearest neighbours of ``query``.

        Parameters
        ----------
        query:
            The query vector (full dimensionality of the store).
        k:
            Number of neighbours; clamped to the collection size.
        trace:
            Optional :class:`~repro.core.result.PruningTrace` to record the
            pruning curve into (also attached to the returned result).
        """
        started = time.perf_counter()
        query, k, weights, dimension_order, schedule_length = self._prepare(query, k)
        full_order = self._full_order(dimension_order, query.shape[0])
        statistics = OrderStatistics(query, full_order, weights)

        candidates = self.make_candidates()
        trace = trace if trace is not None else PruningTrace()
        trace.record(0, len(candidates))

        cost_checkpoint = self._store.cost.checkpoint()
        run = self._run_loop if self._engine == "loop" else self._run_fused
        processed, full_scan_dimensions = run(
            query,
            dimension_order,
            full_order,
            statistics,
            candidates,
            k,
            weights,
            trace,
            self._schedule,
            schedule_length,
        )

        final_scores = self._finish_scores(query, dimension_order, processed, candidates)
        oids, scores = self._rank(candidates.oids, final_scores, k)
        elapsed = time.perf_counter() - started

        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=processed,
            full_scan_dimensions=full_scan_dimensions,
            candidate_trace=trace,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=elapsed,
        )

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a whole batch of queries, sharing fragment reads.

        Every query runs the exact single-query algorithm — its own dimension
        order, pruning schedule and candidate set — so each returned
        :class:`~repro.core.result.SearchResult` is bitwise identical to what
        :meth:`search` would return for that query.  The batch engine differs
        only in *how storage is touched*: per execution round, the union of
        all live queries' next fragment blocks is gathered once and served to
        every query, so one sequential pass over a column answers the whole
        batch (see :mod:`repro.core.batch`).

        Parameters
        ----------
        queries:
            ``(batch, N)`` matrix of query vectors (a single 1-D query is
            accepted and treated as a batch of one).
        k:
            Number of neighbours per query; clamped to the collection size.

        Returns
        -------
        A :class:`~repro.core.result.BatchSearchResult` with one result per
        query in submission order; cost and wall-clock time are accounted at
        batch level because fragment reads are shared.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        cost_checkpoint = self._store.cost.checkpoint()
        engine = BatchQueryEngine(self, query_matrix, k)
        results = engine.run()
        return BatchSearchResult(
            results=results,
            cost=self._store.cost.since(cost_checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- shared per-query plumbing (also used by the batch engine) ---------------

    def _prepare(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, int, np.ndarray | None, np.ndarray, int]:
        """Validate one query and plan its dimension order."""
        query = self._metric.validate_query(query)
        if query.shape[0] != self._store.dimensionality:
            raise QueryError(
                f"query has {query.shape[0]} dimensions, the store has {self._store.dimensionality}"
            )
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)

        weights = self._metric.weights if isinstance(self._metric, WeightedSquaredEuclidean) else None
        dimension_order = self._ordering.order(query, weights=weights)
        if weights is not None:
            # Subspace fast path: zero-weight dimensions contribute nothing
            # and their fragments never need to be touched (Section 8.1).
            dimension_order = dimension_order[weights[dimension_order] > 0.0]
        schedule_length = (
            self._store.dimensionality if weights is None else int(dimension_order.shape[0])
        )
        return query, k, weights, dimension_order, schedule_length

    def make_candidates(self) -> CandidateSet:
        """A fresh candidate set with the bookkeeping this searcher's bound needs."""
        return CandidateSet(
            self._store,
            track_partial_sums=self._bound.needs_partial_value_sums,
            track_remaining_sums=self._bound.needs_remaining_value_sums,
            mode=self._candidate_mode,
            switch_selectivity=self._switch_selectivity,
        )

    # -- execution engines -------------------------------------------------------

    def _run_loop(
        self,
        query: np.ndarray,
        dimension_order: np.ndarray,
        full_order: np.ndarray,
        statistics: OrderStatistics,
        candidates: CandidateSet,
        k: int,
        weights: np.ndarray | None,
        trace: PruningTrace,
        schedule: PruningSchedule,
        schedule_length: int,
    ) -> tuple[int, int]:
        """The seed per-dimension reference engine."""
        total_dimensions = int(dimension_order.shape[0])
        processed = 0
        full_scan_dimensions = 0
        next_attempt = processed + schedule.first_batch(schedule_length)

        while processed < total_dimensions and len(candidates) > k:
            dimension = int(dimension_order[processed])
            column = candidates.column_values(dimension)
            contributions = self._metric.contributions(column, query[dimension], dimension=dimension)
            self._store.cost.charge_arithmetic(len(column) * self._metric.arithmetic_ops_per_value())
            candidates.accumulate(contributions, column)
            if candidates.mode is CandidateMode.BITMAP:
                full_scan_dimensions += 1
            processed += 1

            if processed >= next_attempt or processed == total_dimensions:
                next_attempt = processed + self._prune_and_plan(
                    query, full_order, statistics, processed, candidates, k, weights,
                    trace, schedule, schedule_length,
                )
        return processed, full_scan_dimensions

    def _run_fused(
        self,
        query: np.ndarray,
        dimension_order: np.ndarray,
        full_order: np.ndarray,
        statistics: OrderStatistics,
        candidates: CandidateSet,
        k: int,
        weights: np.ndarray | None,
        trace: PruningTrace,
        schedule: PruningSchedule,
        schedule_length: int,
    ) -> tuple[int, int]:
        """The fused block-scan engine: one kernel call per pruning period.

        Processes the same dimensions, attempts the same prunes with the same
        bounds and folds contributions in the same order as :meth:`_run_loop`,
        so the results (and the accounted cost) are bitwise identical — the
        only difference is that each pruning period costs one storage gather
        and one kernel call instead of m per-dimension round trips.
        """
        total_dimensions = int(dimension_order.shape[0])
        processed = 0
        full_scan_dimensions = 0
        next_attempt = schedule.first_batch(schedule_length)

        while processed < total_dimensions and len(candidates) > k:
            block_end = min(max(next_attempt, processed + 1), total_dimensions)
            block_dimensions = dimension_order[processed:block_end]
            self._scan_block(candidates, query, block_dimensions)
            if candidates.mode is CandidateMode.BITMAP:
                full_scan_dimensions += int(block_dimensions.shape[0])
            processed = block_end

            if processed >= next_attempt or processed == total_dimensions:
                next_attempt = processed + self._prune_and_plan(
                    query, full_order, statistics, processed, candidates, k, weights,
                    trace, schedule, schedule_length,
                )
        return processed, full_scan_dimensions

    # -- internals -----------------------------------------------------------------

    def _prune_and_plan(
        self,
        query: np.ndarray,
        full_order: np.ndarray,
        statistics: OrderStatistics,
        processed: int,
        candidates: CandidateSet,
        k: int,
        weights: np.ndarray | None,
        trace: PruningTrace,
        schedule: PruningSchedule,
        schedule_length: int,
    ) -> int:
        """One pruning checkpoint: attempt the prune, record the trace point
        and return how many dimensions to process before the next attempt.

        This is the single copy of the checkpoint logic shared by the loop
        engine, the fused engine and the batch engine — the bitwise-identity
        guarantee between them rests on all three calling exactly this.
        """
        before = len(candidates)
        self._attempt_prune(query, full_order, statistics, processed, candidates, k, weights)
        trace.record(processed, len(candidates))
        return schedule.next_batch(
            dimensionality=schedule_length,
            dimensions_processed=processed,
            candidates_before=before,
            candidates_after=len(candidates),
        )

    def _scan_block(
        self,
        candidates: CandidateSet,
        query: np.ndarray,
        block_dimensions: np.ndarray,
        *,
        charge_storage: bool = True,
    ) -> None:
        """Fold one pruning period into the candidate state with one kernel call.

        While every vector is still alive (full-bitmap phase — where almost
        all the bytes of a query are moved) the fragments are streamed in
        place: no gather, no fresh allocations, per-column temporaries in the
        reused workspace.  Afterwards the block arrives as one restricted
        gather.  ``charge_storage=False`` lets the batch engine charge one
        shared read for a whole round instead.
        """
        cost = self._store.cost
        if candidates.mode is CandidateMode.BITMAP and candidates.is_full():
            columns = self._store.fragment_columns(block_dimensions, charge=charge_storage)
            if self._scan_workspace.shape[0] < len(candidates):
                self._scan_workspace = np.empty(len(candidates), dtype=np.float64)
            cost.charge_arithmetic(
                len(candidates)
                * int(block_dimensions.shape[0])
                * self._metric.arithmetic_ops_per_value()
            )
            self._kernel.accumulate_scan(
                columns,
                query[block_dimensions],
                block_dimensions,
                candidates.partial_scores,
                self._scan_workspace[: len(candidates)],
            )
            candidates.accumulate_value_columns(columns)
            return
        if charge_storage:
            values = candidates.block_values(block_dimensions)
        else:
            values = self._store.gather_block(block_dimensions, oids=candidates.oids, charge=None)
        contribution_block = self._kernel.contribution_block(
            values, query[block_dimensions], block_dimensions
        )
        cost.charge_arithmetic(values.size * self._metric.arithmetic_ops_per_value())
        candidates.accumulate_block(contribution_block, values)

    def _attempt_prune(
        self,
        query: np.ndarray,
        full_order: np.ndarray,
        statistics: OrderStatistics,
        processed: int,
        candidates: CandidateSet,
        k: int,
        weights: np.ndarray | None,
    ) -> None:
        """One pruning attempt: bound every candidate and drop the hopeless ones."""
        if len(candidates) <= k:
            return
        state = PartialState(
            query=query,
            order=full_order,
            num_processed=processed,
            partial_scores=candidates.partial_scores,
            partial_value_sums=candidates.partial_value_sums,
            remaining_value_sums=candidates.remaining_value_sums,
            weights=weights,
            order_statistics=statistics,
        )
        if not self._bound.pruning_worthwhile(state):
            return
        count = len(candidates)
        if self._prune_lower.shape[0] < count:
            self._prune_lower = np.empty(count, dtype=np.float64)
            self._prune_upper = np.empty(count, dtype=np.float64)
            self._prune_keep = np.empty(count, dtype=bool)
        lower, upper = self._bound.total_bounds(
            state, out=(self._prune_lower[:count], self._prune_upper[:count])
        )
        cost = self._store.cost
        cost.charge_arithmetic(2 * count)
        cost.charge_heap(count)
        cost.charge_comparisons(count)

        keep = self._prune_keep[:count]
        if self._metric.kind is MetricKind.SIMILARITY:
            # kappa_min: the k-th largest guaranteed (lower-bound) score.  The
            # selection partitions the lower buffer in place — it is not
            # needed afterwards (the keep test reads only the upper bounds).
            lower.partition(count - k)
            kappa = float(lower[count - k])
            np.greater_equal(upper, kappa, out=keep)
        else:
            # kappa_max: the k-th smallest worst-case (upper-bound) score.
            upper.partition(k - 1)
            kappa = float(upper[k - 1])
            np.less_equal(lower, kappa, out=keep)
        candidates.prune(keep)

    def _full_order(self, order: np.ndarray, dimensionality: int) -> np.ndarray:
        """Extend a (possibly subspace-restricted) order to all dimensions.

        The pruning bounds define "remaining dimensions" as everything after
        the processed prefix; for subspace queries the zero-weight dimensions
        are appended at the end so they count as remaining but never get
        processed (their weight is zero, so they contribute nothing to the
        weighted bounds either).
        """
        if order.shape[0] == dimensionality:
            return order
        missing = np.setdiff1d(np.arange(dimensionality, dtype=np.int64), order, assume_unique=True)
        return np.concatenate([order, missing])

    def _finish_scores(
        self,
        query: np.ndarray,
        order: np.ndarray,
        processed: int,
        candidates: CandidateSet,
    ) -> np.ndarray:
        """Complete the survivors' exact scores on the unprocessed dimensions."""
        scores = candidates.partial_scores.copy()
        remaining = order[processed:]
        if remaining.shape[0] == 0 or len(candidates) == 0:
            return scores
        values = self._store.gather_matrix(candidates.oids, remaining)
        self._store.cost.charge_arithmetic(values.size * self._metric.arithmetic_ops_per_value())
        contribution_block = self._kernel.contribution_block(values, query[remaining], remaining)
        accumulate_columns(scores, contribution_block)
        return scores

    def _rank(self, oids: np.ndarray, scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Best k (OIDs, scores), best first, with deterministic tie-breaks."""
        if scores.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        self._store.cost.charge_heap(scores.shape[0])
        order = self._metric.best_first(scores)
        top = order[:k]
        return oids[top], scores[top]
