"""BOND expressed over the BAT algebra — the Section 6.1 MIL program.

The paper stresses that BOND needs neither user-defined types nor special
index structures: it is expressible in a standard (column-oriented)
relational algebra.  The MIL program of Section 6.1 is, for criterion Hq::

    1.  for i in 1 .. m do
            Di := [min](Hi, const Qi);
        Smin := [+](D1, ..., Dm);
    2.  sumQ := Q1 + .. + Qm;
        sk := Smin.kfetch(k);
        maxbound := sk + sumQ - 1;
        C := Smin.uselect(maxbound, 1.0);
    3.  for i in m+1 .. N do
            Hi := C.reverse.join(Hi);

:func:`bond_mil_search` runs exactly this program — iteratively, with the
candidate BAT shrinking after every round — on the engine operators of
:mod:`repro.engine.operators`.  It exists to demonstrate and test the
relational formulation; the numpy-kernel
:class:`~repro.core.bond.BondSearcher` is the execution path the experiments
use.  Both return identical results on identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import DecreasingQueryOrdering
from repro.core.result import PruningTrace, SearchResult
from repro.engine.bat import BAT
from repro.engine.operators import kfetch, multijoin_map, reverse_join, uselect
from repro.errors import QueryError
from repro.metrics.histogram import HistogramIntersection
from repro.storage.decomposed import DecomposedStore


def bond_mil_search(
    store: DecomposedStore,
    query: np.ndarray,
    k: int,
    *,
    period: int = 8,
    trace: PruningTrace | None = None,
) -> SearchResult:
    """k-NN by histogram intersection, executed as the Section 6.1 MIL program.

    Parameters
    ----------
    store:
        The decomposed histogram collection.
    query:
        The query histogram (L1-normalised).
    k:
        Number of neighbours.
    period:
        Number of dimension fragments consumed between pruning rounds (the
        paper's ``m``).
    """
    metric = HistogramIntersection()
    query = metric.validate_query(query)
    if query.shape[0] != store.dimensionality:
        raise QueryError("query dimensionality does not match the store")
    if k <= 0:
        raise QueryError("k must be at least 1")
    k = min(k, store.cardinality)
    cost = store.cost
    checkpoint = cost.checkpoint()

    order = DecreasingQueryOrdering().order(query)
    trace = trace if trace is not None else PruningTrace()
    trace.record(0, store.cardinality)

    # The candidate BAT C: tail holds the OIDs of the surviving histograms.
    candidates = BAT.dense(np.arange(store.cardinality, dtype=np.int64), name="C")
    # Partial similarity BAT, aligned with the candidate BAT.
    partial = BAT.dense(np.zeros(store.cardinality), name="Smin")

    processed = 0
    total = store.dimensionality
    while processed < total and len(candidates) > k:
        batch = order[processed: min(processed + period, total)]

        # Step 1: per-dimension [min] maps and the [+] multijoin, restricted
        # to the candidate set via C.reverse.join(Hi) (step 3 of the paper's
        # program, applied eagerly as the candidate set shrinks).
        partial_batch = None
        for dimension in batch:
            fragment = store.fragment(int(dimension))
            restricted = reverse_join(candidates, fragment, cost=cost, name=f"H{int(dimension)}|C")
            minimum = multijoin_map(
                np.minimum, restricted, float(query[int(dimension)]), cost=cost, name=f"D{int(dimension)}"
            )
            partial_batch = (
                minimum
                if partial_batch is None
                else multijoin_map(np.add, partial_batch, minimum, cost=cost, name="Smin")
            )
        partial = multijoin_map(np.add, partial, partial_batch, cost=cost, name="Smin")
        processed += len(batch)

        # Step 2: kappa from kfetch, pruning bound from the query mass of the
        # still-unseen dimensions, uselect of the candidates that survive.
        remaining_query_mass = float(query[order[processed:]].sum())
        kappa = kfetch(partial, k, largest=True, cost=cost)
        lower_cutoff = kappa - remaining_query_mass
        survivors = uselect(partial, lower_cutoff, np.inf, cost=cost, name="C'")

        # The uselect result enumerates surviving *positions* within the
        # candidate BAT; translate them back to OIDs and shrink both BATs.
        surviving_positions = survivors.tail.astype(np.int64)
        candidates = candidates.take_positions(surviving_positions, name="C")
        partial = partial.take_positions(surviving_positions, name="Smin")
        trace.record(processed, len(candidates))

    # Finish the survivors' exact scores on the remaining dimensions.
    scores = partial.tail.copy()
    for dimension in order[processed:]:
        fragment = store.fragment(int(dimension), charge=False)
        restricted = reverse_join(candidates, fragment, cost=cost)
        minimum = multijoin_map(np.minimum, restricted, float(query[int(dimension)]), cost=cost)
        scores = scores + minimum.tail

    ranking = np.argsort(-scores, kind="stable")[:k]
    result_oids = candidates.tail.astype(np.int64)[ranking]
    return SearchResult(
        oids=result_oids,
        scores=scores[ranking],
        dimensions_processed=processed,
        full_scan_dimensions=processed,
        candidate_trace=trace,
        cost=cost.since(checkpoint),
    )
