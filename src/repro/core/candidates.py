"""Candidate-set management for BOND (Section 6.1).

During a BOND search the surviving candidates carry per-vector state: the
partial score, and — depending on the pruning criterion — the processed mass
``T(x⁻)`` and/or the remaining mass ``T(x⁺)``.  Early in the search nearly
every vector is still alive, so the candidate set is best represented as a
bitmap over the whole collection and fragments are read in full; once the
candidate set has shrunk below a selectivity threshold the searcher switches
to a *positional* (materialised) representation where only the candidates'
values of each further fragment are fetched.

:class:`CandidateSet` encapsulates that state, the representation switch and
the cost accounting of fragment access in both modes.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.engine.bitmap import Bitmap
from repro.engine.cost import DOUBLE_BYTES
from repro.errors import QueryError
from repro.storage.decomposed import DecomposedStore


class CandidateMode(Enum):
    """How the candidate set is represented physically."""

    BITMAP = "bitmap"
    POSITIONAL = "positional"


class CandidateSet:
    """Surviving candidates plus their per-vector bookkeeping.

    Parameters
    ----------
    store:
        The decomposed store the search runs on.
    track_partial_sums:
        Maintain ``T(x⁻)`` per candidate (needed by criterion Hh).
    track_remaining_sums:
        Maintain ``T(x⁺)`` per candidate (needed by Ev and the weighted
        bound); initialised from the store's materialised row sums.
    mode:
        ``"auto"`` switches from bitmap to positional once selectivity drops
        below ``switch_selectivity``; ``"bitmap"`` / ``"positional"`` force a
        representation for the whole search (the ablation toggle).
    switch_selectivity:
        Candidate fraction below which the auto mode materialises.
    """

    def __init__(
        self,
        store: DecomposedStore,
        *,
        track_partial_sums: bool = False,
        track_remaining_sums: bool = False,
        mode: str = "auto",
        switch_selectivity: float = 0.05,
    ) -> None:
        if mode not in ("auto", "bitmap", "positional"):
            raise QueryError("candidate mode must be 'auto', 'bitmap' or 'positional'")
        if not (0.0 < switch_selectivity <= 1.0):
            raise QueryError("switch_selectivity must be in (0, 1]")
        self._store = store
        self._mode_policy = mode
        self._switch_selectivity = switch_selectivity

        live = store.full_candidates()
        self._oids = live.oids()
        self._current_mode = (
            CandidateMode.POSITIONAL if mode == "positional" else CandidateMode.BITMAP
        )

        count = len(self._oids)
        self.partial_scores = np.zeros(count, dtype=np.float64)
        self.partial_value_sums = np.zeros(count, dtype=np.float64) if track_partial_sums else None
        if track_remaining_sums:
            row_sums = store.row_sums().tail
            self.remaining_value_sums = row_sums[self._oids].astype(np.float64).copy()
        else:
            self.remaining_value_sums = None

    # -- basic accessors -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._oids.shape[0])

    @property
    def oids(self) -> np.ndarray:
        """OIDs of the surviving candidates (ascending)."""
        return self._oids

    @property
    def mode(self) -> CandidateMode:
        """The current physical representation."""
        return self._current_mode

    def selectivity(self) -> float:
        """Surviving fraction of the collection."""
        return len(self) / self._store.cardinality

    def as_bitmap(self) -> Bitmap:
        """The candidate set as a bitmap over the collection."""
        return Bitmap.from_oids(self._store.cardinality, self._oids)

    # -- fragment access -------------------------------------------------------

    def column_values(self, dimension: int) -> np.ndarray:
        """The candidates' values of one dimension, charging the right cost.

        In bitmap mode the whole fragment is read sequentially (that is the
        physical reality of filtering through a bitmap); in positional mode
        only the candidates' values are fetched, modelled as a sequential scan
        of the materialised (already restricted) fragment.
        """
        if self._current_mode is CandidateMode.BITMAP:
            fragment = self._store.fragment(dimension)
            return fragment.tail[self._oids]
        self._store.cost.charge_scan(len(self), DOUBLE_BYTES)
        return self._store.matrix[self._oids, dimension]

    # -- state updates -----------------------------------------------------------

    def accumulate(self, contributions: np.ndarray, column_values: np.ndarray) -> None:
        """Add one dimension's contributions and update the bookkeeping sums."""
        self.partial_scores += contributions
        if self.partial_value_sums is not None:
            self.partial_value_sums += column_values
        if self.remaining_value_sums is not None:
            self.remaining_value_sums -= column_values

    def prune(self, keep_mask: np.ndarray) -> int:
        """Keep only the candidates where ``keep_mask`` is True.

        Returns the number of pruned candidates and performs the
        bitmap-to-positional switch when the auto policy's threshold is
        crossed.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape[0] != len(self):
            raise QueryError("the keep mask must be aligned with the candidate list")
        pruned = int(len(self) - keep_mask.sum())
        if pruned:
            self._oids = self._oids[keep_mask]
            self.partial_scores = self.partial_scores[keep_mask]
            if self.partial_value_sums is not None:
                self.partial_value_sums = self.partial_value_sums[keep_mask]
            if self.remaining_value_sums is not None:
                self.remaining_value_sums = self.remaining_value_sums[keep_mask]
        self._maybe_switch_mode()
        return pruned

    def _maybe_switch_mode(self) -> None:
        if (
            self._mode_policy == "auto"
            and self._current_mode is CandidateMode.BITMAP
            and self.selectivity() <= self._switch_selectivity
        ):
            # Materialising the candidate list costs one gather of the
            # surviving OIDs (charged as random accesses of OID-sized tuples).
            self._store.cost.charge_random_access(len(self), DOUBLE_BYTES)
            self._current_mode = CandidateMode.POSITIONAL
