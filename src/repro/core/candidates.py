"""Candidate-set management for BOND (Section 6.1).

During a BOND search the surviving candidates carry per-vector state: the
partial score, and — depending on the pruning criterion — the processed mass
``T(x⁻)`` and/or the remaining mass ``T(x⁺)``.  Early in the search nearly
every vector is still alive, so the candidate set is best represented as a
bitmap over the whole collection and fragments are read in full; once the
candidate set has shrunk below a selectivity threshold the searcher switches
to a *positional* (materialised) representation where only the candidates'
values of each further fragment are fetched.

:class:`CandidateSet` encapsulates that state, the representation switch and
the cost accounting of fragment access in both modes.  Its per-vector arrays
live in a preallocated *survivor workspace*: pruning compacts the live prefix
of each buffer in place instead of allocating fresh arrays on every prune, so
the score/mass state never reallocates over the lifetime of a search and the
accessors hand out zero-copy views of the live prefix.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.engine.bitmap import Bitmap
from repro.engine.cost import DOUBLE_BYTES
from repro.errors import QueryError
from repro.storage.decomposed import DecomposedStore


class CandidateMode(Enum):
    """How the candidate set is represented physically."""

    BITMAP = "bitmap"
    POSITIONAL = "positional"


class CandidateSet:
    """Surviving candidates plus their per-vector bookkeeping.

    Parameters
    ----------
    store:
        The decomposed store the search runs on.
    track_partial_sums:
        Maintain ``T(x⁻)`` per candidate (needed by criterion Hh).
    track_remaining_sums:
        Maintain ``T(x⁺)`` per candidate (needed by Ev and the weighted
        bound); initialised from the store's materialised row sums.
    mode:
        ``"auto"`` switches from bitmap to positional once selectivity drops
        below ``switch_selectivity``; ``"bitmap"`` / ``"positional"`` force a
        representation for the whole search (the ablation toggle).
    switch_selectivity:
        Candidate fraction below which the auto mode materialises.
    """

    def __init__(
        self,
        store: DecomposedStore,
        *,
        track_partial_sums: bool = False,
        track_remaining_sums: bool = False,
        mode: str = "auto",
        switch_selectivity: float = 0.05,
    ) -> None:
        if mode not in ("auto", "bitmap", "positional"):
            raise QueryError("candidate mode must be 'auto', 'bitmap' or 'positional'")
        if not (0.0 < switch_selectivity <= 1.0):
            raise QueryError("switch_selectivity must be in (0, 1]")
        self._store = store
        self._mode_policy = mode
        self._switch_selectivity = switch_selectivity

        if len(store.deleted) == 0:
            # Virtual dense OIDs: without deletions the live set is 0..n-1.
            initial_oids = np.arange(store.cardinality, dtype=np.int64)
        else:
            initial_oids = store.full_candidates().oids()
        self._current_mode = (
            CandidateMode.POSITIONAL if mode == "positional" else CandidateMode.BITMAP
        )

        # Survivor workspace: every per-vector array is allocated once at full
        # size; `_count` tracks the live prefix and pruning compacts in place.
        self._count = int(initial_oids.shape[0])
        self._oids_buffer = np.ascontiguousarray(initial_oids, dtype=np.int64)
        self._scores_buffer = np.zeros(self._count, dtype=np.float64)
        self._partial_sums_buffer = (
            np.zeros(self._count, dtype=np.float64) if track_partial_sums else None
        )
        if track_remaining_sums:
            row_sums = store.row_sums().tail
            self._remaining_sums_buffer = row_sums[self._oids_buffer].astype(np.float64)
        else:
            self._remaining_sums_buffer = None

    # -- basic accessors -------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def oids(self) -> np.ndarray:
        """OIDs of the surviving candidates (ascending; view of the workspace)."""
        return self._oids_buffer[: self._count]

    @property
    def partial_scores(self) -> np.ndarray:
        """``S(x⁻, q⁻)`` per survivor (view of the workspace)."""
        return self._scores_buffer[: self._count]

    @property
    def partial_value_sums(self) -> np.ndarray | None:
        """``T(x⁻)`` per survivor, or ``None`` when not tracked."""
        if self._partial_sums_buffer is None:
            return None
        return self._partial_sums_buffer[: self._count]

    @property
    def remaining_value_sums(self) -> np.ndarray | None:
        """``T(x⁺)`` per survivor, or ``None`` when not tracked."""
        if self._remaining_sums_buffer is None:
            return None
        return self._remaining_sums_buffer[: self._count]

    @property
    def mode(self) -> CandidateMode:
        """The current physical representation."""
        return self._current_mode

    def is_full(self) -> bool:
        """Whether every vector of the collection is still a candidate."""
        return self._count == self._store.cardinality

    def selectivity(self) -> float:
        """Surviving fraction of the collection."""
        return len(self) / self._store.cardinality

    def as_bitmap(self) -> Bitmap:
        """The candidate set as a bitmap over the collection."""
        return Bitmap.from_oids(self._store.cardinality, self.oids)

    # -- fragment access -------------------------------------------------------

    def column_values(self, dimension: int) -> np.ndarray:
        """The candidates' values of one dimension, charging the right cost.

        In bitmap mode the whole fragment is read sequentially (that is the
        physical reality of filtering through a bitmap); in positional mode
        only the candidates' values are fetched, modelled as a sequential scan
        of the materialised (already restricted) fragment.  Values come back
        float64 — the exact widening of possibly narrow coefficients — so the
        score arithmetic downstream never runs in a narrow dtype (a narrow
        intermediate would silently poison every subsequent float64 operation
        under NEP 50 promotion rules).
        """
        if self._current_mode is CandidateMode.BITMAP:
            fragment = self._store.fragment(dimension)
            return np.asarray(fragment.tail[self.oids], dtype=np.float64)
        self._store.cost.charge_scan(len(self), self._store.coefficient_bytes)
        return np.asarray(
            self._store.fragment_tail(dimension)[self.oids], dtype=np.float64
        )

    def block_values(self, dimensions: np.ndarray) -> np.ndarray:
        """One pruning period of fragments as a single ``(n, m)`` gather.

        The returned block holds exactly the values the m per-dimension
        :meth:`column_values` calls would return, at the same accounted cost,
        but fetched in one fused storage call.
        """
        if self._current_mode is CandidateMode.BITMAP:
            return self._store.gather_block(
                dimensions, oids=None if self.is_full() else self.oids, charge="full"
            )
        return self._store.gather_block(dimensions, oids=self.oids, charge="candidates")

    def scan_columns(self, dimensions: np.ndarray) -> list[np.ndarray]:
        """Zero-copy full fragment columns for the full-bitmap fast path.

        Only valid while every vector is still a candidate — the caller must
        check :meth:`is_full` (and bitmap mode) first.  Charged exactly like
        the equivalent :meth:`block_values` call.
        """
        if self._current_mode is not CandidateMode.BITMAP or not self.is_full():
            raise QueryError("scan_columns requires the full-bitmap candidate state")
        return self._store.fragment_columns(dimensions)

    # -- state updates -----------------------------------------------------------

    def accumulate(self, contributions: np.ndarray, column_values: np.ndarray) -> None:
        """Add one dimension's contributions and update the bookkeeping sums."""
        scores = self.partial_scores
        scores += contributions
        if self._partial_sums_buffer is not None:
            partial_sums = self.partial_value_sums
            partial_sums += column_values
        if self._remaining_sums_buffer is not None:
            remaining_sums = self.remaining_value_sums
            remaining_sums -= column_values

    def accumulate_block(self, contribution_block: np.ndarray, value_block: np.ndarray) -> None:
        """Fold a whole block of dimensions into the per-vector state.

        Columns are folded left to right so the accumulated floats are
        bitwise identical to m successive :meth:`accumulate` calls.
        """
        if contribution_block.shape[0] != self._count:
            raise QueryError("the contribution block must be aligned with the candidate list")
        scores = self.partial_scores
        for position in range(contribution_block.shape[1]):
            scores += contribution_block[:, position]
        if self._partial_sums_buffer is not None:
            partial_sums = self.partial_value_sums
            for position in range(value_block.shape[1]):
                partial_sums += value_block[:, position]
        if self._remaining_sums_buffer is not None:
            remaining_sums = self.remaining_value_sums
            for position in range(value_block.shape[1]):
                remaining_sums -= value_block[:, position]

    def accumulate_value_columns(
        self, columns: list[np.ndarray], rows: slice | None = None
    ) -> None:
        """Update the bookkeeping sums for whole columns (full-bitmap path).

        The score accumulation itself is done by the kernel's
        ``accumulate_scan``; this folds the same columns into ``T(x⁻)`` /
        ``T(x⁺)`` in the same left-to-right order as :meth:`accumulate_block`.

        ``rows`` restricts the update to one row tile of the live prefix: the
        cache-aware tile rounds pass the tile's column slices together with
        the matching ``rows`` slice, and because the folds are elementwise per
        row, tiling them changes nothing about the accumulated floats.
        """
        if self._partial_sums_buffer is not None:
            partial_sums = self.partial_value_sums
            if rows is not None:
                partial_sums = partial_sums[rows]
            for column in columns:
                partial_sums += column
        if self._remaining_sums_buffer is not None:
            remaining_sums = self.remaining_value_sums
            if rows is not None:
                remaining_sums = remaining_sums[rows]
            for column in columns:
                remaining_sums -= column

    def prune(self, keep_mask: np.ndarray) -> int:
        """Keep only the candidates where ``keep_mask`` is True.

        Compacts the survivor workspace in place (no reallocation), returns
        the number of pruned candidates and performs the bitmap-to-positional
        switch when the auto policy's threshold is crossed.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape[0] != len(self):
            raise QueryError("the keep mask must be aligned with the candidate list")
        # One pass over the mask to find the survivors, then cheap integer
        # gathers (touching only the survivors) per buffer — a boolean gather
        # would rescan the full mask once per array.
        survivor_positions = np.flatnonzero(keep_mask)
        survivors = int(survivor_positions.shape[0])
        pruned = self._count - survivors
        if pruned:
            count = self._count
            self._oids_buffer[:survivors] = self._oids_buffer[:count][survivor_positions]
            self._scores_buffer[:survivors] = self._scores_buffer[:count][survivor_positions]
            if self._partial_sums_buffer is not None:
                self._partial_sums_buffer[:survivors] = self._partial_sums_buffer[:count][
                    survivor_positions
                ]
            if self._remaining_sums_buffer is not None:
                self._remaining_sums_buffer[:survivors] = self._remaining_sums_buffer[:count][
                    survivor_positions
                ]
            self._count = survivors
        self._maybe_switch_mode()
        return pruned

    def _maybe_switch_mode(self) -> None:
        if (
            self._mode_policy == "auto"
            and self._current_mode is CandidateMode.BITMAP
            and self.selectivity() <= self._switch_selectivity
        ):
            # Materialising the candidate list costs one gather of the
            # surviving OIDs (charged as random accesses of OID-sized tuples).
            self._store.cost.charge_random_access(len(self), DOUBLE_BYTES)
            self._current_mode = CandidateMode.POSITIONAL
