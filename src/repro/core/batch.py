"""Batched multi-query BOND execution with shared fragment reads.

Serving heavy query traffic means many concurrent k-NN searches against the
same decomposed store.  Running them one by one re-reads the same dimension
fragments once per query; the batch engine instead advances *all* live
queries in lockstep rounds and, per round, gathers the **union** of every
query's next fragment block in a single storage call.  One sequential pass
over a column therefore serves the whole batch — the multi-query analogue of
the paper's "touch only the bytes that matter".

Each query nevertheless runs the exact single-query algorithm: its own
dimension order (decreasing *its* query values), its own pruning schedule,
candidate set, bounds and trace.  The per-query results are bitwise identical
to :meth:`~repro.core.bond.BondSearcher.search`; only the storage accounting
differs (shared reads are charged once instead of once per query).

The engine stays in shared-read mode while at least one query still scans
full fragments through a bitmap; once every live query has materialised its
(small) candidate list, full-column reads would be wasted and the engine
falls back to the per-query positional gathers of the single-query path.

:class:`CompressedBatchEngine` applies the same protocol to the compressed
filter-and-refine searcher: the shared reads are 1-byte code columns, and
per-query state is the interval partial scores of the filter instead of a
candidate set.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.bounds.base import OrderStatistics
from repro.core.candidates import CandidateMode, CandidateSet
from repro.core.planner import PruningSchedule
from repro.core.result import PruningTrace, SearchResult
from repro.engine.cost import COMPRESSED_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (bond imports batch)
    from repro.core.bond import BondSearcher
    from repro.core.compressed import CompressedBondSearcher


@dataclass
class QueryRun:
    """The in-flight state of one query inside a batch."""

    index: int
    query: np.ndarray
    k: int
    order: np.ndarray
    full_order: np.ndarray
    statistics: OrderStatistics
    schedule: PruningSchedule
    candidates: CandidateSet
    weights: np.ndarray | None
    schedule_length: int
    trace: PruningTrace = field(default_factory=PruningTrace)
    processed: int = 0
    full_scan_dimensions: int = 0
    next_attempt: int = 0
    result: SearchResult | None = None

    @property
    def total_dimensions(self) -> int:
        """How many dimensions this query processes at most."""
        return int(self.order.shape[0])

    @property
    def finished(self) -> bool:
        """Whether the main scan loop is over for this query."""
        return (
            self.result is not None
            or self.processed >= self.total_dimensions
            or len(self.candidates) <= self.k
        )

    def next_block(self) -> np.ndarray:
        """The dimensions this query processes in the upcoming round.

        Mirrors the fused single-query engine: up to the next pruning attempt
        (at least one dimension), clipped to the remaining order.
        """
        block_end = min(max(self.next_attempt, self.processed + 1), self.total_dimensions)
        return self.order[self.processed:block_end]


class BatchQueryEngine:
    """Executes one batch of queries against a :class:`BondSearcher`."""

    def __init__(self, searcher: "BondSearcher", queries: np.ndarray, k: int) -> None:
        self._searcher = searcher
        self._store = searcher.store
        self._runs = [
            self._plan(index, query, k) for index, query in enumerate(queries)
        ]

    def _plan(self, index: int, query: np.ndarray, k: int) -> QueryRun:
        """Validate one query and set up its independent run state."""
        searcher = self._searcher
        query, k, weights, order, schedule_length = searcher._prepare(query, k)
        full_order = searcher._full_order(order, query.shape[0])
        # Adaptive schedules carry per-search state, so every query gets its
        # own copy (the single-query path resets the shared one per search).
        # Schedules hold only scalar configuration, so a shallow copy suffices.
        schedule = copy.copy(searcher._schedule)
        run = QueryRun(
            index=index,
            query=query,
            k=k,
            order=order,
            full_order=full_order,
            statistics=OrderStatistics(query, full_order, weights),
            schedule=schedule,
            candidates=searcher.make_candidates(),
            weights=weights,
            schedule_length=schedule_length,
        )
        run.trace.record(0, len(run.candidates))
        run.next_attempt = schedule.first_batch(schedule_length)
        return run

    # -- driving ---------------------------------------------------------------

    def run(self) -> list[SearchResult]:
        """Drive every query to completion and return results in order."""
        live = [run for run in self._runs if not self._maybe_finalize(run)]
        while live:
            self._round(live)
            live = [run for run in live if not self._maybe_finalize(run)]
        return [run.result for run in self._runs]

    def _round(self, live: list[QueryRun]) -> None:
        """One execution round: every live query advances by one block."""
        # Shared reads apply to the queries that still stream full fragments
        # through a bitmap: the union of *their* requested columns passes
        # once and is charged once, no matter how many of them consume it
        # (physically, the first consumer pulls a fragment through the cache
        # and the others hit it warm).  Queries that have materialised their
        # candidate list read (and are charged for) only their own few
        # survivors, exactly like the single-query path.
        scanning = [
            (run, run.next_block())
            for run in live
            if run.candidates.mode is CandidateMode.BITMAP
        ]
        positional = [
            (run, run.next_block())
            for run in live
            if run.candidates.mode is not CandidateMode.BITMAP
        ]
        if scanning:
            union = np.unique(np.concatenate([block for _, block in scanning]))
            self._store.cost.charge_block_scan(
                self._store.cardinality, int(union.size), self._store.coefficient_bytes
            )
            self._scan_round(scanning)
        for run, block_dimensions in positional:
            self._advance(run, block_dimensions, charge_storage=True)

    def _scan_round(self, scanning: list[tuple[QueryRun, np.ndarray]]) -> None:
        """Advance the round's full-scanning queries (the shared read is
        already charged).  The tile-round engine overrides exactly this hook,
        so the round's classification and charging logic has a single copy."""
        for run, block_dimensions in scanning:
            self._advance(run, block_dimensions, charge_storage=False)

    def _advance(
        self, run: QueryRun, block_dimensions: np.ndarray, *, charge_storage: bool
    ) -> None:
        """Fold one block into a query's state and attempt its prune."""
        self._searcher._scan_block(
            run.candidates, run.query, block_dimensions, charge_storage=charge_storage
        )
        self._after_block(run, block_dimensions)

    def _after_block(self, run: QueryRun, block_dimensions: np.ndarray) -> None:
        """Post-scan bookkeeping of one block: counters and the prune attempt.

        Split out of :meth:`_advance` so the tile-round engine
        (:class:`repro.core.parallel.TiledBatchQueryEngine`) can interleave
        the scans of several queries tile by tile and still run exactly this
        checkpoint logic per query afterwards.
        """
        searcher = self._searcher
        if run.candidates.mode is CandidateMode.BITMAP:
            run.full_scan_dimensions += int(block_dimensions.shape[0])
        run.processed += int(block_dimensions.shape[0])

        if run.processed >= run.next_attempt or run.processed == run.total_dimensions:
            run.next_attempt = run.processed + searcher._prune_and_plan(
                run.query,
                run.full_order,
                run.statistics,
                run.processed,
                run.candidates,
                run.k,
                run.weights,
                run.trace,
                run.schedule,
                run.schedule_length,
            )

    def _maybe_finalize(self, run: QueryRun) -> bool:
        """Complete a finished query's exact scores and build its result."""
        if run.result is not None:
            return True
        if not run.finished:
            return False
        searcher = self._searcher
        final_scores = searcher._finish_scores(run.query, run.order, run.processed, run.candidates)
        oids, scores = searcher._rank(run.candidates.oids, final_scores, run.k)
        run.result = SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=run.processed,
            full_scan_dimensions=run.full_scan_dimensions,
            candidate_trace=run.trace,
        )
        return True

    @property
    def runs(self) -> list[QueryRun]:
        """The per-query run states (introspection / tests)."""
        return self._runs


@dataclass
class CompressedQueryRun:
    """The in-flight filter state of one query of a compressed batch.

    The compressed filter carries *interval* partial scores — a lower and an
    upper bound per surviving candidate — instead of a
    :class:`~repro.core.candidates.CandidateSet`, so it gets its own run
    record; the driving protocol (next_block / finished) mirrors
    :class:`QueryRun`.
    """

    index: int
    query: np.ndarray
    k: int
    order: np.ndarray
    weights: np.ndarray | None
    schedule: PruningSchedule
    oids: np.ndarray
    score_lower: np.ndarray
    score_upper: np.ndarray
    #: Early-out mask over all dimensions: True where the interval
    #: contribution is provably zero for every candidate (None when no
    #: dimension qualifies), see :func:`repro.kernels.interval.provably_zero_dimensions`.
    zero_dimensions: np.ndarray | None = None
    trace: PruningTrace = field(default_factory=PruningTrace)
    processed: int = 0
    full_scan_dimensions: int = 0
    next_attempt: int = 0
    result: SearchResult | None = None

    @property
    def total_dimensions(self) -> int:
        """How many dimensions this query processes at most."""
        return int(self.order.shape[0])

    @property
    def finished(self) -> bool:
        """Whether the filter loop is over for this query."""
        return (
            self.result is not None
            or self.processed >= self.total_dimensions
            or self.oids.shape[0] <= self.k
        )

    def next_block(self) -> np.ndarray:
        """The dimensions this query processes in the upcoming round.

        Mirrors the fused single-query engine: up to the next pruning attempt
        (at least one dimension), clipped to the remaining order.
        """
        block_end = min(max(self.next_attempt, self.processed + 1), self.total_dimensions)
        return self.order[self.processed:block_end]


class CompressedBatchEngine:
    """Executes one batch of queries against a :class:`CompressedBondSearcher`.

    The same round-lockstep protocol as :class:`BatchQueryEngine`, applied to
    the filter-and-refine searcher: per round, the union of every
    full-scanning query's next fragment block is charged once as a single
    compressed block scan (physically, the first consumer pulls the 1-byte
    code column through the cache and the others hit it warm).  Queries whose
    candidate list has shrunk below the positional threshold fetch — and are
    charged for — only their own candidates' codes, exactly like the
    single-query path.
    """

    def __init__(
        self, searcher: "CompressedBondSearcher", queries: np.ndarray, k: int
    ) -> None:
        self._searcher = searcher
        self._store = searcher.store
        self._runs = [
            searcher._plan(index, query, k) for index, query in enumerate(queries)
        ]

    def run(self) -> list[SearchResult]:
        """Drive every query through filter and refinement, in order."""
        searcher = self._searcher
        live = [run for run in self._runs if not searcher._finalize(run)]
        while live:
            self._round(live)
            live = [run for run in live if not searcher._finalize(run)]
        return [run.result for run in self._runs]

    def _round(self, live: list[CompressedQueryRun]) -> None:
        """One execution round: every live query advances by one block."""
        searcher = self._searcher
        scanning = [
            (run, run.next_block()) for run in live if not searcher._is_positional(run)
        ]
        positional = [
            (run, run.next_block()) for run in live if searcher._is_positional(run)
        ]
        if scanning:
            self._charge_shared_read(scanning)
            self._scan_round(scanning)
        for run, block_dimensions in positional:
            searcher._advance(run, block_dimensions, charge_storage=True)

    def _scan_round(self, scanning: list[tuple[CompressedQueryRun, np.ndarray]]) -> None:
        """Advance the round's full-scanning queries (the shared read is
        already charged).  The tile-round engine overrides exactly this hook,
        so the round's classification and charging logic has a single copy."""
        for run, block_dimensions in scanning:
            self._searcher._advance(run, block_dimensions, charge_storage=False)

    def _charge_shared_read(
        self, scanning: list[tuple[CompressedQueryRun, np.ndarray]]
    ) -> None:
        """Charge one shared read of the round's fragment union.

        Only the dimensions at least one query actually consumes count: the
        query-side early-out (see
        :func:`repro.kernels.interval.provably_zero_dimensions`) removes
        provably-zero dimensions from each query's block before it reaches a
        kernel, so they cost nothing here either — the same accounting the
        single-query path applies.
        """
        searcher = self._searcher
        active_blocks = [
            searcher._active_block(run, block) for run, block in scanning
        ]
        active_blocks = [block for block in active_blocks if block.size]
        if not active_blocks:
            return
        union = np.unique(np.concatenate(active_blocks))
        self._store.cost.charge_block_scan(
            self._store.cardinality, int(union.size), COMPRESSED_BYTES
        )

    @property
    def runs(self) -> list[CompressedQueryRun]:
        """The per-query run states (introspection / tests)."""
        return self._runs
