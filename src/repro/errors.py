"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch anything originating from this package with a single except clause,
while still being able to distinguish configuration problems from data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class EngineError(ReproError):
    """Raised when a column-store engine operation is used incorrectly."""


class PropertyViolation(EngineError):
    """Raised when a BAT property (dense, sorted, key) is violated."""


class AlignmentError(EngineError):
    """Raised when a positional (aligned) operation receives misaligned BATs."""


class StorageError(ReproError):
    """Raised for invalid physical-design / store operations."""


class MetricError(ReproError):
    """Raised when a similarity metric receives invalid input."""


class BoundError(ReproError):
    """Raised when a pruning bound is asked for an inconsistent state."""


class QueryError(ReproError):
    """Raised for invalid query specifications (bad k, bad weights, ...)."""


class PlanError(QueryError):
    """Raised when the query planner cannot find a capable backend."""


class ServingError(ReproError):
    """Raised by the asyncio serving layer on invalid use of a service."""


class QueueFull(ServingError):
    """Raised when a submission is rejected by admission control.

    The serving queue is bounded (see
    :class:`repro.serving.ServingConfig.max_queue`); rejecting the overflow
    explicitly — instead of queueing unboundedly — is what lets callers shed
    load at the edge.
    """


class ServiceClosed(ServingError):
    """Raised when submitting to a service that is not accepting requests."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators on invalid parameters."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on invalid configurations."""
