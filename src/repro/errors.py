"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch anything originating from this package with a single except clause,
while still being able to distinguish configuration problems from data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class EngineError(ReproError):
    """Raised when a column-store engine operation is used incorrectly."""


class PropertyViolation(EngineError):
    """Raised when a BAT property (dense, sorted, key) is violated."""


class AlignmentError(EngineError):
    """Raised when a positional (aligned) operation receives misaligned BATs."""


class StorageError(ReproError):
    """Raised for invalid physical-design / store operations."""


class CorruptFragmentError(StorageError):
    """Raised when a persisted fragment fails integrity verification.

    ``Index.open(verify="checksum")`` compares every fragment file it reads
    against the checksum recorded in the manifest; a mismatch (a flipped
    byte, a truncated file) raises this error *naming the fragment* instead
    of silently loading garbage.
    """


class ManifestVersionError(StorageError):
    """Raised when a persisted manifest's schema version cannot be served.

    Either the layout version is unknown to this build, or the caller asked
    for an integrity feature (checksum verification) that the persisting
    build predates.
    """


class MetricError(ReproError):
    """Raised when a similarity metric receives invalid input."""


class BoundError(ReproError):
    """Raised when a pruning bound is asked for an inconsistent state."""


class QueryError(ReproError):
    """Raised for invalid query specifications (bad k, bad weights, ...)."""


class PlanError(QueryError):
    """Raised when the query planner cannot find a capable backend."""


class BackendError(ReproError):
    """Raised when a planned backend fails while *executing* a query.

    This is the execution-time counterpart of :class:`PlanError`: planning
    succeeded, but the chosen physical backend could not produce an answer
    (a shard worker died, a store read failed, an injected fault fired).
    ``Index.answer`` reacts by failing over to the next capable backend; the
    serving layer additionally feeds these into its per-backend circuit
    breakers.
    """


class TransientBackendError(BackendError):
    """A backend failure that is expected to succeed on retry.

    The serving layer retries these with bounded exponential backoff under a
    per-service retry budget; deterministic fault injection raises this type
    by default, so chaos runs exercise exactly the retry path.
    """


class FailoverExhausted(BackendError):
    """Raised when every capable backend in the failover chain failed.

    Carries the per-backend causes in :attr:`attempts` (a tuple of
    ``(backend_name, repr(error))`` pairs) so operators see the whole chain,
    not just the last failure.
    """

    def __init__(self, message: str, attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)


class FaultInjectionError(ReproError):
    """Raised on invalid use of the deterministic fault-injection registry."""


class ServingError(ReproError):
    """Raised by the asyncio serving layer on invalid use of a service."""


class DeadlineExceeded(ServingError):
    """Raised when a request's per-request deadline expires before service.

    A request submitted with ``submit(..., timeout=...)`` that is still
    queued (or waiting out a retry backoff) when its deadline passes is
    evicted *before* riding a batch and fails with this error — the caller
    already gave up, so executing the query would be wasted work.
    """


class QueueFull(ServingError):
    """Raised when a submission is rejected by admission control.

    The serving queue is bounded (see
    :class:`repro.serving.ServingConfig.max_queue`); rejecting the overflow
    explicitly — instead of queueing unboundedly — is what lets callers shed
    load at the edge.
    """


class ServiceClosed(ServingError):
    """Raised when submitting to a service that is not accepting requests."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators on invalid parameters."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on invalid configurations."""
