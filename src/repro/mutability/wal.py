"""The checksummed write-ahead log behind ``Index.insert`` / ``Index.delete``.

Every acknowledged mutation of an attached (persisted) index is first made
durable here: the record is built, written, **fsynced, and only then
acknowledged** — so a kill at any instant leaves the log holding exactly the
acknowledged updates plus at most one torn trailing record, which replay
detects by checksum and truncates away.

File layout::

    header:  RPWL0001 (8 bytes)  token (8 ASCII hex bytes)
    record:  magic u32 | lsn u64 | op u8 | payload_len u32 | payload | crc32 u32

All integers are little-endian.  The CRC-32 covers ``lsn`` through
``payload``, so a record whose tail was never written (or was half-written
by a crash) fails its checksum and marks the torn tail.  LSNs are assigned
by the writer, strictly increasing; replay rejects a non-monotonic sequence
as corruption rather than applying updates out of order.

The **token** ties a log to the manifest generation lineage it belongs to:
it is the CRC-32 of the manifest bytes at the moment the log was created
(manifests of this store are byte-deterministic, so the token is too).  A
reorganisation commits a new manifest and resets the log under the new
token; an open that finds a log whose token does not match the current
manifest knows the log is a leftover of an earlier lineage (e.g. a crash
landed between the manifest commit and the log reset) and ignores it —
every record it held was already merged into the committed generation.

Payloads:

* ``insert`` (op 1): ``rows u32 | dims u32 | rows*dims float64 coefficients``
  — the *logical* (pre-quantisation) vectors; replay re-applies the store
  format's quantisation, which is deterministic, so a replayed tail is
  bitwise identical to the acknowledged one.
* ``delete`` (op 2): ``count u32 | count int64 OIDs``.

Fault points (see :mod:`repro.reliability.faults`): ``wal.append`` fires
before any byte is written, ``wal.fsync`` after the write but before the
fsync — arming either simulates a crash on the unacknowledged side of the
durability boundary.
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib

import numpy as np

from repro.errors import StorageError
from repro.reliability.faults import fault_point

#: Fixed 8-byte file header preceding the lineage token.
WAL_HEADER = b"RPWL0001"
#: Per-record magic word.
RECORD_MAGIC = 0x57414C52  # "WALR"
#: Record operation codes.
OP_INSERT = 1
OP_DELETE = 2

_HEAD = struct.Struct("<IQBI")  # magic, lsn, op, payload_len
_CRC = struct.Struct("<I")
_HEADER_LEN = len(WAL_HEADER) + 8  # header + 8 ASCII token bytes

#: Hard cap on a single record payload (sanity bound against reading a
#: corrupt length field as a multi-GB allocation).
MAX_PAYLOAD_BYTES = 1 << 31


def wal_token(manifest_bytes: bytes) -> str:
    """The 8-hex-digit lineage token of a manifest's exact bytes."""
    return f"{zlib.crc32(manifest_bytes) & 0xFFFFFFFF:08x}"


class WalRecord:
    """One decoded WAL record."""

    __slots__ = ("lsn", "op", "vectors", "oids")

    def __init__(self, lsn: int, op: int, *, vectors=None, oids=None) -> None:
        self.lsn = lsn
        self.op = op
        self.vectors = vectors
        self.oids = oids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "insert" if self.op == OP_INSERT else "delete"
        return f"<WalRecord lsn={self.lsn} {kind}>"


def _encode_insert(lsn: int, vectors: np.ndarray) -> bytes:
    rows = np.ascontiguousarray(vectors, dtype="<f8")
    payload = struct.pack("<II", rows.shape[0], rows.shape[1]) + rows.tobytes()
    return _encode(lsn, OP_INSERT, payload)


def _encode_delete(lsn: int, oids: np.ndarray) -> bytes:
    oid_array = np.ascontiguousarray(oids, dtype="<i8")
    payload = struct.pack("<I", oid_array.shape[0]) + oid_array.tobytes()
    return _encode(lsn, OP_DELETE, payload)


def _encode(lsn: int, op: int, payload: bytes) -> bytes:
    head = _HEAD.pack(RECORD_MAGIC, lsn, op, len(payload))
    crc = zlib.crc32(head[4:] + payload) & 0xFFFFFFFF
    return head + payload + _CRC.pack(crc)


def _decode_payload(lsn: int, op: int, payload: bytes) -> WalRecord:
    if op == OP_INSERT:
        if len(payload) < 8:
            raise StorageError(f"WAL insert record {lsn} payload is truncated")
        rows, dims = struct.unpack_from("<II", payload)
        expected = 8 + rows * dims * 8
        if len(payload) != expected or dims == 0:
            raise StorageError(f"WAL insert record {lsn} has an inconsistent payload")
        vectors = np.frombuffer(payload, dtype="<f8", offset=8).reshape(rows, dims)
        return WalRecord(lsn, op, vectors=np.asarray(vectors, dtype=np.float64).copy())
    if op == OP_DELETE:
        if len(payload) < 4:
            raise StorageError(f"WAL delete record {lsn} payload is truncated")
        (count,) = struct.unpack_from("<I", payload)
        if len(payload) != 4 + count * 8:
            raise StorageError(f"WAL delete record {lsn} has an inconsistent payload")
        oids = np.frombuffer(payload, dtype="<i8", offset=4)
        return WalRecord(lsn, op, oids=np.asarray(oids, dtype=np.int64).copy())
    raise StorageError(f"WAL record {lsn} carries unknown operation code {op}")


def read_wal(
    path: str | pathlib.Path, *, token: str, repair: bool = True
) -> tuple[list[WalRecord], int]:
    """Read every intact record of a WAL file; returns ``(records, last_lsn)``.

    A missing file or a token mismatch (the log belongs to an earlier
    manifest lineage whose updates are already merged) yields no records.  A
    torn tail — short read, bad magic, bad CRC at the end of the file — is
    **truncated away** when ``repair=True`` (the open path: the torn record
    was never acknowledged, so dropping it restores the last acknowledged
    state).  Corruption *before* the tail (a record that parses but breaks
    LSN monotonicity) raises a typed :class:`~repro.errors.StorageError`
    instead of replaying updates out of order.
    """
    wal_path = pathlib.Path(path)
    if not wal_path.exists():
        return [], 0
    data = wal_path.read_bytes()
    if len(data) < _HEADER_LEN or data[: len(WAL_HEADER)] != WAL_HEADER:
        # Never written past (or through) its header: treat as empty; repair
        # truncates the fragment so the next append starts clean.
        if repair and len(data):
            _rewrite(wal_path, WAL_HEADER + token.encode("ascii"))
        return [], 0
    file_token = data[len(WAL_HEADER) : _HEADER_LEN].decode("ascii", errors="replace")
    if file_token != token:
        # A leftover of an earlier manifest lineage (crash between a commit
        # and its log reset): every record is already merged.  Repair retires
        # it under the current token — otherwise a later append would land
        # behind the stale header and be ignored by the next open.
        if repair:
            _rewrite(wal_path, WAL_HEADER + token.encode("ascii"))
        return [], 0

    records: list[WalRecord] = []
    offset = _HEADER_LEN
    valid_end = offset
    last_lsn = 0
    while offset < len(data):
        if offset + _HEAD.size > len(data):
            break  # torn head
        magic, lsn, op, payload_len = _HEAD.unpack_from(data, offset)
        if magic != RECORD_MAGIC or payload_len > MAX_PAYLOAD_BYTES:
            break  # torn / garbage tail
        end = offset + _HEAD.size + payload_len + _CRC.size
        if end > len(data):
            break  # torn payload
        payload = data[offset + _HEAD.size : end - _CRC.size]
        (crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if zlib.crc32(data[offset + 4 : end - _CRC.size]) & 0xFFFFFFFF != crc:
            break  # torn record: checksum failed
        if lsn <= last_lsn:
            raise StorageError(
                f"WAL records out of order at byte {offset}: lsn {lsn} after {last_lsn}"
            )
        records.append(_decode_payload(lsn, op, payload))
        last_lsn = lsn
        offset = end
        valid_end = end
    if repair and valid_end < len(data):
        _rewrite(wal_path, data[:valid_end])
    return records, last_lsn


def _rewrite(path: pathlib.Path, content: bytes) -> None:
    """Repair helper: rewrite the log to exactly ``content`` and fsync."""
    with open(path, "r+b" if path.exists() else "wb") as handle:
        handle.seek(0)
        handle.write(content)
        handle.truncate(len(content))
        handle.flush()
        os.fsync(handle.fileno())


class WriteAheadLog:
    """Append-side handle of one store directory's write-ahead log.

    Parameters
    ----------
    path:
        The ``wal.log`` file inside the store directory.
    token:
        Lineage token of the manifest this log belongs to (see
        :func:`wal_token`).
    next_lsn:
        First LSN this handle will assign (replay determines it as
        ``max(manifest wal_lsn, last intact record) + 1``).

    The file is created lazily on the first append — a freshly saved index
    that is never mutated leaves no ``wal.log`` behind.  Appends are
    crash-atomic from the caller's perspective: on any failure (including an
    injected ``wal.append`` / ``wal.fsync`` fault) the handle rolls the file
    back to the pre-append length before re-raising, so an *unacknowledged*
    record never survives in a live process; in a real crash the process is
    gone and replay's checksum truncation provides the same guarantee.
    """

    def __init__(self, path: str | pathlib.Path, *, token: str, next_lsn: int = 1) -> None:
        self._path = pathlib.Path(path)
        self._token = token
        self._next_lsn = int(next_lsn)
        self._handle = None

    @property
    def path(self) -> pathlib.Path:
        """Location of the log file."""
        return self._path

    @property
    def token(self) -> str:
        """Lineage token written into the log header."""
        return self._token

    @property
    def next_lsn(self) -> int:
        """The LSN the next append will carry."""
        return self._next_lsn

    def _ensure_open(self):
        if self._handle is None:
            fresh = not self._path.exists() or self._path.stat().st_size == 0
            self._handle = open(self._path, "ab")
            if fresh:
                self._handle.write(WAL_HEADER + self._token.encode("ascii"))
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return self._handle

    def append_insert(self, vectors: np.ndarray) -> int:
        """Durably log an insert; returns its LSN once the fsync lands."""
        lsn = self._next_lsn
        fault_point("wal.append", lsn=lsn, op="insert")
        self._append(_encode_insert(lsn, vectors), lsn)
        return lsn

    def append_delete(self, oids: np.ndarray) -> int:
        """Durably log a delete; returns its LSN once the fsync lands."""
        lsn = self._next_lsn
        fault_point("wal.append", lsn=lsn, op="delete")
        self._append(_encode_delete(lsn, oids), lsn)
        return lsn

    def _append(self, record: bytes, lsn: int) -> None:
        handle = self._ensure_open()
        offset = handle.tell()
        try:
            handle.write(record)
            handle.flush()
            fault_point("wal.fsync", lsn=lsn)
            os.fsync(handle.fileno())
        except BaseException:
            # Roll the file back so the live handle never acknowledges (or
            # later replays past) a record whose fsync did not complete.
            try:
                handle.truncate(offset)
                handle.seek(0, os.SEEK_END)
            except OSError:  # pragma: no cover - rollback is best effort
                pass
            raise
        self._next_lsn = lsn + 1

    def reset(self, *, token: str) -> None:
        """Start a fresh log under a new lineage ``token`` (post-commit).

        Called after a manifest generation commit merged every logged record:
        the old records are dropped and the header is rewritten.  The LSN
        sequence continues — LSNs are unique across generations, which is
        what lets the manifest's ``wal_lsn`` watermark delimit replay.
        """
        self.close()
        self._token = token
        _rewrite(self._path, WAL_HEADER + token.encode("ascii"))

    def close(self) -> None:
        """Close the underlying file handle (reopened lazily on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
