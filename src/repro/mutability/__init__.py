"""Crash-safe live mutability: WAL, delta tail, overlay, epoch snapshots.

The paper's Section 6.2 update story — differential files merged by
periodic reorganisations — made durable and queryable:

* :class:`WriteAheadLog` / :func:`read_wal`: checksummed append-fsync-ack
  logging of every insert/delete, replayed by ``Index.open``;
* :class:`TailState`: the immutable in-memory delta tail (inserted rows +
  delete bitmap view) published by atomic swap;
* :func:`overlay_answer` / :func:`inflated_k`: exact correction of any base
  backend's top-k for the live tail, via the stack's deterministic
  score-then-OID merge;
* :class:`Epoch`: the all-or-nothing unit a reorganisation publishes.

``Index.insert`` / ``Index.delete`` / ``Index.reorganize`` on the facade
(:mod:`repro.api.index`) are the entry points; this package is the
machinery behind them.
"""

from repro.mutability.epoch import Epoch
from repro.mutability.overlay import inflated_k, overlay_answer
from repro.mutability.tail import TailState
from repro.mutability.wal import (
    OP_DELETE,
    OP_INSERT,
    WalRecord,
    WriteAheadLog,
    read_wal,
    wal_token,
)

__all__ = [
    "Epoch",
    "TailState",
    "WalRecord",
    "WriteAheadLog",
    "OP_DELETE",
    "OP_INSERT",
    "inflated_k",
    "overlay_answer",
    "read_wal",
    "wal_token",
]
