"""The in-memory delta tail: live inserted rows plus the delete bitmap view.

Between reorganisations, acknowledged updates live here (Section 6.2's
differential file): inserted rows as a row-major tail in **logical**
(pre-quantisation) float64 form, deletes as a dead-flag per tail row plus a
sorted array of deleted base OIDs.  Tail states are immutable — each
mutation produces a new state object, and the index publishes it with one
atomic epoch swap, so a query thread holding a state sees a frozen view
with no locking.

Tail rows carry OIDs ``base_cardinality + position`` (position in insert
order, dead rows included): exactly the coordinate system of
:meth:`repro.engine.updates.DeltaLog.apply`, so overlay answers and the
reorganised store agree on which row an OID names.

Scoring goes through a :class:`~repro.storage.rowstore.RowStore` built over
the raw rows in the index's own fragment format: the scan yields
widened-**quantised** coefficients (bitwise what the rows will hold after
the next reorganisation, by the format's quantise-once idempotence
contract) and charges the shared cost model at the narrow coefficient
width, keeping the bytes-moved account honest.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cost import CostModel
from repro.errors import StorageError
from repro.storage.formats import FragmentFormat
from repro.storage.rowstore import RowStore


class TailState:
    """One immutable snapshot of the delta tail."""

    __slots__ = (
        "base_cardinality",
        "dimensionality",
        "raw",
        "dead",
        "deleted_base",
        "last_lsn",
        "_format",
        "_cost",
        "_name",
        "_row_store",
        "sub_index",
    )

    def __init__(
        self,
        *,
        base_cardinality: int,
        dimensionality: int,
        raw: np.ndarray,
        dead: np.ndarray,
        deleted_base: np.ndarray,
        last_lsn: int,
        format: FragmentFormat,
        cost: CostModel,
        name: str,
    ) -> None:
        self.base_cardinality = int(base_cardinality)
        self.dimensionality = int(dimensionality)
        self.raw = raw
        self.dead = dead
        self.deleted_base = deleted_base
        self.last_lsn = int(last_lsn)
        self._format = format
        self._cost = cost
        self._name = name
        self._row_store = None
        #: Lazily built tail-only Index used to score tail rows with the
        #: same backend kernels as the base answer (set by the facade; an
        #: immutable state keeps it valid for its whole lifetime).
        self.sub_index = None

    @classmethod
    def empty(
        cls,
        *,
        base_cardinality: int,
        dimensionality: int,
        format: FragmentFormat,
        cost: CostModel,
        name: str = "tail",
    ) -> "TailState":
        """The clean state: no tail rows, no deletes."""
        return cls(
            base_cardinality=base_cardinality,
            dimensionality=dimensionality,
            raw=np.empty((0, dimensionality), dtype=np.float64),
            dead=np.empty(0, dtype=bool),
            deleted_base=np.empty(0, dtype=np.int64),
            last_lsn=0,
            format=format,
            cost=cost,
            name=name,
        )

    # -- derived views -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the overlay would be the identity (no rows, no deletes)."""
        return self.raw.shape[0] == 0 and self.deleted_base.shape[0] == 0

    @property
    def tail_rows(self) -> int:
        """Tail rows ever inserted under this state (dead ones included)."""
        return int(self.raw.shape[0])

    @property
    def live_tail_count(self) -> int:
        """Tail rows still alive."""
        return int(self.raw.shape[0] - np.count_nonzero(self.dead))

    @property
    def deleted_base_count(self) -> int:
        """Base rows deleted under this state."""
        return int(self.deleted_base.shape[0])

    @property
    def total_cardinality(self) -> int:
        """Upper end of the OID coordinate system: base plus all tail rows."""
        return self.base_cardinality + self.tail_rows

    @property
    def live_count(self) -> int:
        """Logical collection size: live base rows plus live tail rows."""
        return self.base_cardinality - self.deleted_base_count + self.live_tail_count

    @property
    def live_oids(self) -> np.ndarray:
        """Global OIDs of the live tail rows, ascending."""
        if self.raw.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return self.base_cardinality + np.flatnonzero(~self.dead).astype(np.int64)

    def live_raw_rows(self) -> np.ndarray:
        """The live tail rows in logical (pre-quantisation) float64 form."""
        return self.raw[~self.dead] if self.raw.shape[0] else self.raw

    def live_tail(self) -> tuple[np.ndarray, np.ndarray]:
        """``(global OIDs, widened-quantised rows)`` of the live tail rows.

        Charges a full tail scan to the shared cost model (the overlay
        genuinely reads every tail coefficient per query).
        """
        if self.raw.shape[0] == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self.dimensionality), dtype=np.float64),
            )
        if self._row_store is None:
            self._row_store = RowStore(
                self.raw, cost=self._cost, name=self._name, format=self._format
            )
        rows = self._row_store.scan()
        alive = ~self.dead
        oids = self.base_cardinality + np.flatnonzero(alive).astype(np.int64)
        return oids, rows[alive]

    # -- transitions (return a NEW state; never mutate in place) --------------------

    def with_insert(self, rows: np.ndarray, *, lsn: int) -> "TailState":
        """The state after appending ``rows`` (already validated float64 2-D)."""
        return TailState(
            base_cardinality=self.base_cardinality,
            dimensionality=self.dimensionality,
            raw=np.concatenate([self.raw, rows], axis=0),
            dead=np.concatenate([self.dead, np.zeros(rows.shape[0], dtype=bool)]),
            deleted_base=self.deleted_base,
            last_lsn=lsn,
            format=self._format,
            cost=self._cost,
            name=self._name,
        )

    def with_delete(self, oids: np.ndarray, *, lsn: int) -> "TailState":
        """The state after deleting ``oids`` (validated against this state).

        OIDs below ``base_cardinality`` mark base rows deleted; the rest mark
        tail rows dead.  Deleting an already-deleted OID is a no-op (the
        delete bitmap is idempotent), but an OID outside the coordinate
        system raises — that row never existed.
        """
        oid_array = np.asarray(oids, dtype=np.int64)
        if oid_array.size and (
            oid_array.min() < 0 or oid_array.max() >= self.total_cardinality
        ):
            raise StorageError(
                f"delete targets an OID outside the collection "
                f"(live coordinate system is [0, {self.total_cardinality}))"
            )
        in_base = oid_array[oid_array < self.base_cardinality]
        in_tail = oid_array[oid_array >= self.base_cardinality]
        deleted_base = self.deleted_base
        if in_base.size:
            deleted_base = np.unique(np.concatenate([deleted_base, in_base]))
        dead = self.dead
        if in_tail.size:
            dead = dead.copy()
            dead[in_tail - self.base_cardinality] = True
        return TailState(
            base_cardinality=self.base_cardinality,
            dimensionality=self.dimensionality,
            raw=self.raw,
            dead=dead,
            deleted_base=deleted_base,
            last_lsn=lsn,
            format=self._format,
            cost=self._cost,
            name=self._name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TailState +{self.live_tail_count}/-{self.deleted_base_count}"
            f" over |{self.base_cardinality}| lsn={self.last_lsn}>"
        )
