"""Overlaying the delta tail on a base backend's answer.

Every backend keeps answering over the **base** snapshot (the fragments of
the committed generation); this module corrects that answer for the live
updates: deleted base rows are filtered out, live tail rows are merged in,
and the survivors rank through the exact score-then-ascending-OID tie-break
the rest of the stack uses (the same merge as
:func:`repro.core.parallel.merge_shard_results`) — so the overlay answer is
bitwise identical to a from-scratch search over the updated collection.

Two properties make the overlay *exact* rather than heuristic:

* To survive the delete filter, the base backend is asked for an
  **inflated** top-k: ``k + deleted_base_count`` (capped at the base
  cardinality) guarantees at least ``k`` non-deleted base rows remain even
  if every deleted row ranked in the top-k.
* Tail rows are scored **by the same backend** that produced the base
  answer, over a tail-only sub-index (see ``Index._tail_scores``).  Every
  exact engine's per-row score is a pure function of (query, metric, row) —
  the accumulation order is fixed by the query, never by the rest of the
  collection (``accumulate_columns`` keeps blocked sums order-exact) — so a
  tail row's overlay score is bitwise the score it will have after the next
  reorganisation folds it into the base.  Scoring the tail with a *different*
  kernel (e.g. a plain ``metric.score``) would drift by floating-point
  association and break rebuild identity; only the approximate backends,
  which promise no bitwise contract, use that fallback.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel
from repro.metrics.base import Metric
from repro.mutability.tail import TailState


def inflated_k(k: int, tail: TailState) -> int:
    """The top-k to request from the base backend under ``tail``."""
    return max(1, min(k + tail.deleted_base_count, tail.base_cardinality))


def overlay_answer(
    answer: SearchResult | BatchSearchResult,
    k: int,
    metric: Metric,
    tail: TailState,
    cost: CostModel,
    tail_scores: np.ndarray | None,
) -> SearchResult | BatchSearchResult:
    """Merge a base answer (at the inflated k) with the tail; return top-``k``.

    ``tail_scores`` is the per-query score matrix of the live tail rows —
    shape ``(n_queries, live_tail_count)``, columns aligned with
    ``tail.live_oids`` — or ``None`` when no tail row is alive (pure-delete
    overlay).  Scoring charges were paid where the scores were computed; the
    merge itself charges its comparisons and heap work to ``cost``.
    """
    tail_oids = tail.live_oids
    if isinstance(answer, BatchSearchResult):
        merged = [
            _overlay_single(
                result,
                k,
                metric,
                tail,
                tail_oids,
                None if tail_scores is None else tail_scores[row],
                cost,
            )
            for row, result in enumerate(answer.results)
        ]
        return BatchSearchResult(
            results=merged, cost=answer.cost, elapsed_seconds=answer.elapsed_seconds
        )
    return _overlay_single(
        answer,
        k,
        metric,
        tail,
        tail_oids,
        None if tail_scores is None else tail_scores[0],
        cost,
    )


def _overlay_single(
    base: SearchResult,
    k: int,
    metric: Metric,
    tail: TailState,
    tail_oids: np.ndarray,
    tail_scores: np.ndarray | None,
    cost: CostModel,
) -> SearchResult:
    oids = base.oids
    scores = base.scores
    if tail.deleted_base_count:
        keep = ~np.isin(oids, tail.deleted_base)
        cost.charge_comparisons(int(oids.shape[0]))
        oids = oids[keep]
        scores = scores[keep]
    if tail_scores is not None and tail_oids.shape[0]:
        oids = np.concatenate([oids, tail_oids])
        scores = np.concatenate([scores, tail_scores])
    # The deterministic merge: ascending OID first, then stable best-first on
    # scores — ties break toward the smaller OID, exactly as everywhere else.
    cost.charge_heap(int(oids.shape[0]))
    cost.charge_comparisons(int(oids.shape[0]))
    by_oid = np.argsort(oids, kind="stable")
    best = by_oid[metric.best_first(scores[by_oid])[:k]]
    return SearchResult(
        oids=oids[best],
        scores=scores[best],
        dimensions_processed=base.dimensions_processed,
        full_scan_dimensions=base.full_scan_dimensions,
        candidate_trace=base.candidate_trace,
        cost=base.cost,
        elapsed_seconds=base.elapsed_seconds,
        exact=base.exact,
        degraded=base.degraded,
        failed_shards=base.failed_shards,
    )
