"""Epoch snapshots: the unit of atomic publication for live mutability.

An :class:`Epoch` bundles everything whose consistency a query depends on —
the base stores of one committed generation, the shard plan over them, the
approximate-tier structures built against them, the searcher cache bound to
them, and the current delta tail.  The :class:`~repro.api.index.Index`
serves queries by *pinning* the current epoch for the duration of one
answer (a thread-local reference plus a refcount), and mutations publish a
new state with a single attribute assignment — atomic under the GIL — so
the answer path takes **no locks** and a reorganisation swapping the whole
epoch never tears a query that started on the old one.

Two kinds of publication happen here:

* updates replace ``epoch.tail`` (a fresh immutable
  :class:`~repro.mutability.tail.TailState`) on the live epoch;
* ``reorganize()`` replaces the index's epoch reference wholesale with the
  next generation.

Readers copy the reference(s) they need once and work off the copies; the
refcount (``pins``) exists for introspection and tests — correctness never
waits on it.
"""

from __future__ import annotations

import threading

from repro.engine.updates import DeltaLog
from repro.mutability.tail import TailState


class Epoch:
    """One generation's worth of index state, swapped atomically as a unit."""

    def __init__(
        self,
        *,
        generation: int,
        base_cardinality: int,
        dimensionality: int,
        tail: TailState,
        delta: DeltaLog,
    ) -> None:
        self.generation = int(generation)
        self.base_cardinality = int(base_cardinality)
        self.dimensionality = int(dimensionality)
        #: The live delta tail; replaced (never mutated) on insert/delete.
        self.tail = tail
        #: Op-order log mirroring the tail; consumed by ``reorganize()``.
        self.delta = delta
        # -- lazily materialised per-epoch state (built by the Index) -------
        self.input = None          # ingested matrix (None on the open path)
        self.vectors = None        # widened-quantised logical matrix cache
        self.row_store = None
        self.decomposed = None
        self.compressed = None
        self.shard_plan = None
        self.cluster_plan = None
        self.hnsw_graph = None
        self.ivf_partitions = None
        self.approx_records = None  # persisted sidecar records (open path)
        self.approx_dir = None
        #: Searcher cache keyed by (backend name, metric spec); searchers
        #: hold references to this epoch's stores, so the cache dies with it.
        self.searchers: dict = {}
        self._pin_lock = threading.Lock()
        self._pins = 0
        self._on_idle = None

    @property
    def pins(self) -> int:
        """Number of queries currently pinned to this epoch."""
        with self._pin_lock:
            return self._pins

    def acquire(self) -> "Epoch":
        """Pin this epoch (one reader entered)."""
        with self._pin_lock:
            self._pins += 1
        return self

    def release(self) -> None:
        """Unpin this epoch (one reader left)."""
        with self._pin_lock:
            self._pins -= 1
            callback = self._on_idle if self._pins <= 0 else None
            if callback is not None:
                self._on_idle = None
        if callback is not None:
            callback()

    def retire(self, on_idle) -> None:
        """Run ``on_idle`` once the last pinned reader leaves.

        A superseded epoch may still be serving queries that pinned it
        before the swap; resources bound to it (process pools, shared-memory
        segments held by cached sharded engines) must not be torn down under
        them.  ``retire`` defers the cleanup to the last :meth:`release` —
        or runs it immediately when nothing is pinned.  The callback fires
        exactly once, outside the pin lock.
        """
        with self._pin_lock:
            if self._pins > 0:
                self._on_idle = on_idle
                return
        on_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Epoch gen={self.generation} |{self.base_cardinality}| "
            f"tail={self.tail.live_tail_count}/-{self.tail.deleted_base_count} "
            f"pins={self.pins}>"
        )
