"""Serving statistics: per-request, per-batch and service-level views.

The serving layer's value is only visible in its distributions — how long
requests queued, how large the micro-batches came out, what each batch cost —
so the service keeps a running collector and exposes immutable
:class:`ServingStats` snapshots.  Batch cost is attributed with the
:meth:`~repro.engine.cost.CostModel.snapshot` /
:meth:`~repro.engine.cost.CostModel.delta_since` pair around every batch and
folded into a collector-owned :class:`~repro.engine.cost.CostModel` via
``merge_account`` — the index's live account is never mutated for
bookkeeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cost import CostAccount, CostModel

#: How many per-batch records a collector retains for inspection.
BATCH_LOG_LIMIT = 1024

#: How many recent samples the latency/batch-size distributions are computed
#: over.  A long-lived service must not grow without bound (nor pay an
#: ever-growing percentile pass per ``stats()`` call), so the distributions
#: are sliding windows; the scalar counters remain exact for the whole life.
SAMPLE_WINDOW = 65536


@dataclass(frozen=True)
class BatchStats:
    """One executed micro-batch.

    Attributes
    ----------
    batch_size:
        Number of queries the batch answered.
    sequence_numbers:
        Submission sequence number of every request in the batch, in batch
        row order — what the flush-ordering tests assert on.
    queue_waits:
        Seconds each request waited between submission and admission.
    batch_seconds:
        Wall-clock seconds of the ``Index.answer`` call for the whole batch.
    cost:
        The cost-model delta this batch charged to the index.
    backend:
        Name of the backend the planner executed the batch on (``None`` when
        the query left the choice to the planner and the plan was not
        recorded).
    """

    batch_size: int
    sequence_numbers: tuple[int, ...]
    queue_waits: tuple[float, ...]
    batch_seconds: float
    cost: CostAccount
    backend: str | None = None


@dataclass(frozen=True)
class ServingStats:
    """An immutable service-level snapshot.

    The counters (submitted / completed / rejected / cancelled / failed /
    batches) are exact for the whole service life; the percentile and
    batch-size aggregates are computed over a sliding window of the most
    recent :data:`SAMPLE_WINDOW` samples, so a long-lived service stays
    bounded in memory.  ``request_seconds`` is end-to-end (submission to
    result, i.e. queue wait plus the batch execution the request rode in).
    """

    submitted: int
    completed: int
    rejected: int
    cancelled: int
    failed: int
    batches: int
    pending: int
    mean_batch_size: float
    max_batch_size: int
    queue_wait_p50: float
    queue_wait_p99: float
    batch_seconds_p50: float
    batch_seconds_p99: float
    request_seconds_p50: float
    request_seconds_p99: float
    cost: CostAccount
    recent_batches: tuple[BatchStats, ...] = field(repr=False, default=())

    def as_dict(self) -> dict:
        """The scalar fields as a plain dictionary (for benchmark reports)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "batches": self.batches,
            "pending": self.pending,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p99": self.queue_wait_p99,
            "batch_seconds_p50": self.batch_seconds_p50,
            "batch_seconds_p99": self.batch_seconds_p99,
            "request_seconds_p50": self.request_seconds_p50,
            "request_seconds_p99": self.request_seconds_p99,
            "cost": self.cost.as_dict(),
        }


def _percentile(samples: deque, q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class StatsCollector:
    """Mutable accumulator behind :meth:`SearchService.stats`.

    All record methods run on the event-loop thread (batch completion
    callbacks land there), so the collector needs no locking of its own;
    the cost fold-in goes through the locked ``merge_account``.  Sample
    distributions are bounded rings (see :data:`SAMPLE_WINDOW`); counters
    and the accumulated cost are exact for the whole service life.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.failed = 0
        self.completed = 0
        self.batches = 0
        self._queue_waits: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._batch_seconds: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._request_seconds: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._batch_sizes: deque[int] = deque(maxlen=SAMPLE_WINDOW)
        self._recent: deque[BatchStats] = deque(maxlen=BATCH_LOG_LIMIT)
        self._cost = CostModel()

    def record_submit(self) -> None:
        self.submitted += 1

    def record_rejection(self) -> None:
        self.rejected += 1

    def record_cancellations(self, count: int) -> None:
        self.cancelled += count

    def record_failure(self, batch_size: int) -> None:
        self.failed += batch_size

    def record_batch(
        self, batch: BatchStats, request_seconds: list[float], *, delivered: int | None = None
    ) -> None:
        """Fold one executed micro-batch into the running aggregates.

        ``delivered`` is the number of riders whose futures actually received
        the result (riders abandoned mid-execution are counted as cancelled
        by the service, not completed); the batch-shape aggregates still
        describe the batch as executed.
        """
        self.completed += batch.batch_size if delivered is None else delivered
        self.batches += 1
        self._batch_sizes.append(batch.batch_size)
        self._batch_seconds.append(batch.batch_seconds)
        self._queue_waits.extend(batch.queue_waits)
        self._request_seconds.extend(request_seconds)
        self._recent.append(batch)
        self._cost.merge_account(batch.cost)

    def snapshot(self, *, pending: int) -> ServingStats:
        """An immutable view of everything recorded so far."""
        sizes = self._batch_sizes
        return ServingStats(
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            cancelled=self.cancelled,
            failed=self.failed,
            batches=self.batches,
            pending=pending,
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            max_batch_size=max(sizes) if sizes else 0,
            queue_wait_p50=_percentile(self._queue_waits, 50),
            queue_wait_p99=_percentile(self._queue_waits, 99),
            batch_seconds_p50=_percentile(self._batch_seconds, 50),
            batch_seconds_p99=_percentile(self._batch_seconds, 99),
            request_seconds_p50=_percentile(self._request_seconds, 50),
            request_seconds_p99=_percentile(self._request_seconds, 99),
            cost=self._cost.checkpoint(),
            recent_batches=tuple(self._recent),
        )
