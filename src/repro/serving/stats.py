"""Serving statistics: per-request, per-batch and service-level views.

The serving layer's value is only visible in its distributions — how long
requests queued, how large the micro-batches came out, what each batch cost —
so the service keeps a running collector and exposes immutable
:class:`ServingStats` snapshots.  Batch cost is attributed with the
:meth:`~repro.engine.cost.CostModel.snapshot` /
:meth:`~repro.engine.cost.CostModel.delta_since` pair around every batch and
folded into a collector-owned :class:`~repro.engine.cost.CostModel` via
``merge_account`` — the index's live account is never mutated for
bookkeeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cost import CostAccount, CostModel
from repro.reliability.retry import BreakerState

#: How many per-batch records a collector retains for inspection.
BATCH_LOG_LIMIT = 1024

#: How many recent samples the latency/batch-size distributions are computed
#: over.  A long-lived service must not grow without bound (nor pay an
#: ever-growing percentile pass per ``stats()`` call), so the distributions
#: are sliding windows; the scalar counters remain exact for the whole life.
SAMPLE_WINDOW = 65536


@dataclass(frozen=True)
class BatchStats:
    """One executed micro-batch.

    Attributes
    ----------
    batch_size:
        Number of queries the batch answered.
    sequence_numbers:
        Submission sequence number of every request in the batch, in batch
        row order — what the flush-ordering tests assert on.
    queue_waits:
        Seconds each request waited between submission and admission.
    batch_seconds:
        Wall-clock seconds of the ``Index.answer`` call for the whole batch.
    cost:
        The cost-model delta this batch charged to the index.
    backend:
        Name of the backend the planner executed the batch on (``None`` when
        the query left the choice to the planner and the plan was not
        recorded).
    """

    batch_size: int
    sequence_numbers: tuple[int, ...]
    queue_waits: tuple[float, ...]
    batch_seconds: float
    cost: CostAccount
    backend: str | None = None


@dataclass(frozen=True)
class ServingStats:
    """An immutable service-level snapshot.

    The counters (submitted / completed / rejected / cancelled / failed /
    expired / retries / failovers / batches) are exact for the whole service
    life; the percentile and batch-size aggregates are computed over a
    sliding window of the most recent :data:`SAMPLE_WINDOW` samples, so a
    long-lived service stays bounded in memory.  ``request_seconds`` is
    end-to-end (submission to result, i.e. queue wait plus the batch
    execution the request rode in).

    ``expired`` counts requests failed with
    :class:`~repro.errors.DeadlineExceeded` before execution; ``retries``
    counts batch re-executions after a transient backend error; ``failovers``
    counts executions that succeeded on a backend other than the planned one.
    """

    submitted: int
    completed: int
    rejected: int
    cancelled: int
    failed: int
    expired: int
    retries: int
    failovers: int
    batches: int
    pending: int
    mean_batch_size: float
    max_batch_size: int
    queue_wait_p50: float
    queue_wait_p99: float
    batch_seconds_p50: float
    batch_seconds_p99: float
    request_seconds_p50: float
    request_seconds_p99: float
    cost: CostAccount
    recent_batches: tuple[BatchStats, ...] = field(repr=False, default=())
    #: Per-backend circuit-breaker snapshots at stats() time (sorted by name).
    breakers: tuple[BreakerState, ...] = ()

    def as_dict(self) -> dict:
        """The scalar fields as a plain dictionary (for benchmark reports)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "expired": self.expired,
            "retries": self.retries,
            "failovers": self.failovers,
            "batches": self.batches,
            "pending": self.pending,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p99": self.queue_wait_p99,
            "batch_seconds_p50": self.batch_seconds_p50,
            "batch_seconds_p99": self.batch_seconds_p99,
            "request_seconds_p50": self.request_seconds_p50,
            "request_seconds_p99": self.request_seconds_p99,
            "cost": self.cost.as_dict(),
            "breakers": {b.backend: b.state for b in self.breakers},
        }


@dataclass(frozen=True)
class ServiceHealth:
    """A point-in-time operational snapshot of one :class:`SearchService`.

    Complements :class:`ServingStats` (lifetime aggregates) with the state an
    operator acts on *now*: whether the service still accepts work, what is
    queued, how much of the transient-retry budget is left, and every
    backend circuit breaker's state.
    """

    running: bool
    pending: int
    retry_budget_remaining: int | None
    breakers: tuple[BreakerState, ...]

    @property
    def open_breakers(self) -> tuple[str, ...]:
        """Names of the backends whose breaker is currently not closed."""
        return tuple(b.backend for b in self.breakers if b.state != "closed")

    def as_dict(self) -> dict:
        """The snapshot as a plain dictionary (for benchmark reports)."""
        return {
            "running": self.running,
            "pending": self.pending,
            "retry_budget_remaining": self.retry_budget_remaining,
            "breakers": {
                b.backend: {
                    "state": b.state,
                    "consecutive_failures": b.consecutive_failures,
                    "total_failures": b.total_failures,
                    "total_successes": b.total_successes,
                }
                for b in self.breakers
            },
        }


def _percentile(samples: deque, q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class StatsCollector:
    """Mutable accumulator behind :meth:`SearchService.stats`.

    All record methods run on the event-loop thread (batch completion
    callbacks land there), so the collector needs no locking of its own;
    the cost fold-in goes through the locked ``merge_account``.  Sample
    distributions are bounded rings (see :data:`SAMPLE_WINDOW`); counters
    and the accumulated cost are exact for the whole service life.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.failed = 0
        self.expired = 0
        self.retries = 0
        self.failovers = 0
        self.completed = 0
        self.batches = 0
        self._queue_waits: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._batch_seconds: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._request_seconds: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._batch_sizes: deque[int] = deque(maxlen=SAMPLE_WINDOW)
        self._recent: deque[BatchStats] = deque(maxlen=BATCH_LOG_LIMIT)
        self._cost = CostModel()

    def record_submit(self) -> None:
        self.submitted += 1

    def record_rejection(self) -> None:
        self.rejected += 1

    def record_cancellations(self, count: int) -> None:
        self.cancelled += count

    def record_failure(self, batch_size: int) -> None:
        self.failed += batch_size

    def record_expirations(self, count: int) -> None:
        self.expired += count

    def record_retry(self) -> None:
        self.retries += 1

    def record_failover(self) -> None:
        self.failovers += 1

    def record_batch(
        self, batch: BatchStats, request_seconds: list[float], *, delivered: int | None = None
    ) -> None:
        """Fold one executed micro-batch into the running aggregates.

        ``delivered`` is the number of riders whose futures actually received
        the result (riders abandoned mid-execution are counted as cancelled
        by the service, not completed); the batch-shape aggregates still
        describe the batch as executed.
        """
        self.completed += batch.batch_size if delivered is None else delivered
        self.batches += 1
        self._batch_sizes.append(batch.batch_size)
        self._batch_seconds.append(batch.batch_seconds)
        self._queue_waits.extend(batch.queue_waits)
        self._request_seconds.extend(request_seconds)
        self._recent.append(batch)
        self._cost.merge_account(batch.cost)

    def snapshot(
        self, *, pending: int, breakers: tuple[BreakerState, ...] = ()
    ) -> ServingStats:
        """An immutable view of everything recorded so far."""
        sizes = self._batch_sizes
        return ServingStats(
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            cancelled=self.cancelled,
            failed=self.failed,
            expired=self.expired,
            retries=self.retries,
            failovers=self.failovers,
            batches=self.batches,
            pending=pending,
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            max_batch_size=max(sizes) if sizes else 0,
            queue_wait_p50=_percentile(self._queue_waits, 50),
            queue_wait_p99=_percentile(self._queue_waits, 99),
            batch_seconds_p50=_percentile(self._batch_seconds, 50),
            batch_seconds_p99=_percentile(self._batch_seconds, 99),
            request_seconds_p50=_percentile(self._request_seconds, 50),
            request_seconds_p99=_percentile(self._request_seconds, 99),
            cost=self._cost.checkpoint(),
            recent_batches=tuple(self._recent),
            breakers=breakers,
        )
