"""``repro.serving``: the asyncio query-serving subsystem.

Turns a stream of independently arriving single queries into the micro-batches
the batch engines are fast at, under an explicit latency budget, with bounded
admission control, per-batch cost attribution, and explicit failure handling
(per-request deadlines, transient-error retry under a budget, backend
failover behind circuit breakers — see :mod:`repro.reliability`).  See
:mod:`repro.serving.service` for the front end,
:mod:`repro.serving.admission` for the fifo/overlap batch-formation policies
and :mod:`repro.serving.stats` for the statistics surface; the serving and
reliability sections of ``docs/API.md`` walk through the lifecycle and knobs.
"""

from repro.serving.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    FifoAdmission,
    OverlapAdmission,
    resolve_admission,
)
from repro.serving.service import SearchService, ServingConfig, replay_open_loop
from repro.serving.stats import BatchStats, ServiceHealth, ServingStats

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "BatchStats",
    "FifoAdmission",
    "OverlapAdmission",
    "replay_open_loop",
    "resolve_admission",
    "SearchService",
    "ServiceHealth",
    "ServingConfig",
    "ServingStats",
]
