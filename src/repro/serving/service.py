"""The asyncio query-serving front end.

:class:`SearchService` turns a stream of independent single-query submissions
into the micro-batches the batch engines are fast at.  Callers ``await
service.submit(vector, k=...)`` and get their own
:class:`~repro.core.result.SearchResult` back; between submission and
execution the service coalesces compatible requests (same ``k``, metric,
mode, backend pin, approx knobs) under a **latency budget**: the oldest
waiting request
never waits longer than the budget for peers to share its batch, and a full
batch flushes immediately.  Execution happens through the PR 3 platform —
``Index.answer(Query(..., batch=True))`` on a worker executor, so the event
loop never blocks and the planner keeps choosing the backend (including the
sharded thread pool) exactly as it would for a direct call.  Served answers
are therefore **bitwise identical** to direct ``Index.answer`` calls.

Admission control is explicit: the waiting queue is bounded and overflow
raises :class:`~repro.errors.QueueFull` at the submitter, the standard
load-shedding contract of an open system.  Shutdown drains: pending requests
flush (budget waived), in-flight batches finish, then the executor closes —
but never for longer than ``drain_timeout``.

Failure handling (see :mod:`repro.reliability`): every request may carry its
own deadline (``submit(..., timeout=...)`` →
:class:`~repro.errors.DeadlineExceeded`, and expired requests are evicted
*before* they ride a batch); a batch whose execution raises a
:class:`~repro.errors.TransientBackendError` is retried with bounded
exponential backoff under a per-service retry budget; execution itself walks
the plan's failover chain, skipping backends whose circuit breaker is open.
Because every backend is exact, a retried or failed-over answer is bitwise
identical to the first-try answer — the only caller-visible outcomes are the
right answer or a typed error.

The service keeps answering while the index mutates: execution goes through
``Index.execute``, which pins one epoch per batch and overlays the live
delta tail on whichever backend answers — so a batch that runs concurrently
with ``insert``/``delete``/``reorganize()`` sees one consistent snapshot and
returns exactly what ``Index.answer`` would have at that instant.

Typical usage::

    from repro.api import Index
    from repro.serving import SearchService, ServingConfig

    index = Index.build(histograms)
    async with SearchService(index, config=ServingConfig(latency_budget=0.002)) as service:
        result = await service.submit(histograms[42], k=10, metric="histogram")
    print(service.stats())
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.api.query import Query
from repro.core.result import BatchSearchResult, SearchResult
from repro.errors import (
    BackendError,
    DeadlineExceeded,
    FailoverExhausted,
    QueueFull,
    ServiceClosed,
    ServingError,
    TransientBackendError,
)
from repro.metrics.base import Metric
from repro.reliability.faults import fault_point
from repro.reliability.retry import CircuitBreaker, RetryBudget, RetryPolicy
from repro.serving.admission import AdmissionPolicy, resolve_admission
from repro.serving.stats import BatchStats, ServiceHealth, ServingStats, StatsCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.index import Index


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs of a :class:`SearchService`.

    Attributes
    ----------
    latency_budget:
        Seconds the *oldest* request of a compatible run may wait for peers
        before its micro-batch flushes regardless of size.  ``0.0`` disables
        coalescing-by-time (every admission pass flushes whatever is
        pending), which is the honest one-query-per-submit configuration.
    max_batch_size:
        Upper bound on queries per micro-batch; a compatible run reaching
        this size flushes immediately, before the budget expires.
    max_queue:
        Bound on requests occupying the service — waiting for admission or
        dispatched and still executing.  The submission that would exceed it
        is rejected with :class:`~repro.errors.QueueFull` — the caller sheds
        load instead of the backlog growing without bound (in the pending
        queue or, invisibly, in the executor's).
    admission:
        Micro-batch formation policy: ``"fifo"``, ``"overlap"``, or a ready
        :class:`~repro.serving.admission.AdmissionPolicy` instance.
    executor_workers:
        Worker threads executing batches.  The default 1 serialises batches,
        which keeps the index's shared :class:`~repro.engine.cost.CostModel`
        single-owner (the lock-free charging contract) and makes per-batch
        cost deltas exact; raise it only with an index whose backends manage
        their own accounts, or pass an executor to :class:`SearchService`.
    drain_timeout:
        Upper bound in seconds on :meth:`SearchService.stop`'s drain (pending
        flushes plus in-flight batches).  On expiry the still-unresolved
        requests fail with :class:`~repro.errors.ServingError` and the
        executor is abandoned without waiting, so a hung backend can never
        wedge shutdown.  ``None`` waits forever (the pre-deadline behaviour).
    max_retries:
        Retries *per batch* after a
        :class:`~repro.errors.TransientBackendError` (0 disables retry).
    retry_base_delay / retry_max_delay:
        Bounded exponential backoff between retries (see
        :class:`~repro.reliability.RetryPolicy`).
    retry_budget:
        Cap on total retries over the service's life (``None``: unlimited);
        once drained, transient errors fail fast (see
        :class:`~repro.reliability.RetryBudget`).
    failover:
        Walk the plan's failover chain on execution-time
        :class:`~repro.errors.BackendError` (next-cheapest capable backend
        first).  ``False`` pins every batch to its planned backend.
    breaker_threshold / breaker_cooldown:
        Per-backend circuit breaker: consecutive failures before the breaker
        opens, and seconds before it admits a half-open probe (see
        :class:`~repro.reliability.CircuitBreaker`).
    """

    latency_budget: float = 0.002
    max_batch_size: int = 32
    max_queue: int = 1024
    admission: "str | AdmissionPolicy" = "fifo"
    executor_workers: int = 1
    drain_timeout: float | None = 30.0
    max_retries: int = 3
    retry_base_delay: float = 0.01
    retry_max_delay: float = 0.25
    retry_budget: int | None = 256
    failover: bool = True
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.latency_budget < 0:
            raise ServingError("latency_budget must be non-negative")
        if self.max_batch_size < 1:
            raise ServingError("max_batch_size must be at least 1")
        if self.max_queue < 1:
            raise ServingError("max_queue must be at least 1")
        if self.executor_workers < 1:
            raise ServingError("executor_workers must be at least 1")
        if self.drain_timeout is not None and self.drain_timeout <= 0:
            raise ServingError("drain_timeout must be positive (or None for unbounded)")
        if self.max_retries < 0:
            raise ServingError("max_retries must be non-negative")
        # The delay and breaker knobs are validated by the primitives built
        # from them (RetryPolicy / RetryBudget / CircuitBreaker), constructed
        # eagerly in SearchService.__init__ so a bad config fails there.


@dataclass(eq=False)
class _PendingRequest:
    """One submitted query waiting for admission (identity-hashed)."""

    sequence: int
    query: Query
    batch_key: tuple
    signature: tuple[int, ...] | None
    future: asyncio.Future
    arrival: float
    deadline: float
    #: Absolute loop time after which the request must fail with
    #: DeadlineExceeded instead of executing (None: no per-request deadline).
    expiry: float | None = None


class SearchService:
    """Latency-budget micro-batching front end over one :class:`Index`.

    The service has a simple lifecycle: ``await start()`` (or ``async
    with``), any number of concurrent :meth:`submit` calls, ``await stop()``.
    One admission task owns the pending queue; batches execute on a worker
    executor so the event loop stays responsive while NumPy crunches.
    """

    def __init__(
        self,
        index: "Index",
        *,
        config: ServingConfig | None = None,
        executor: ThreadPoolExecutor | None = None,
        owns_index: bool = False,
    ) -> None:
        self._index = index
        self._config = config if config is not None else ServingConfig()
        self._policy = resolve_admission(self._config.admission)
        self._executor = executor
        self._owns_executor = executor is None
        # With owns_index=True the service closes the index on stop() —
        # cached sharded engines, process pools and shared-memory segments
        # included.  The ClusterCoordinator builds its members this way.
        self._owns_index = owns_index
        self._pending: deque[_PendingRequest] = deque()
        self._inflight: set[asyncio.Task] = set()
        self._inflight_requests = 0
        self._inflight_riders: set[_PendingRequest] = set()
        self._retry_policy = RetryPolicy(
            base_delay=self._config.retry_base_delay,
            max_delay=self._config.retry_max_delay,
        )
        self._retry_budget = RetryBudget(self._config.retry_budget)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._stats = StatsCollector()
        self._sequence = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._admission_task: asyncio.Task | None = None
        self._state = "new"  # new -> running -> draining -> closed

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "SearchService":
        """Start the admission loop (idempotence is an error: one life only)."""
        if self._state != "new":
            raise ServingError(f"cannot start a service in state {self._state!r}")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._config.executor_workers,
                thread_name_prefix="repro-serving",
            )
        self._state = "running"
        self._admission_task = asyncio.create_task(
            self._admission_loop(), name="repro-serving-admission"
        )
        return self

    async def stop(self, *, drain: bool = True, drain_timeout: float | None = None) -> None:
        """Stop the service.

        With ``drain=True`` (the default) every pending request is flushed —
        the latency budget is waived, batches still form — and in-flight
        batches complete before the executor shuts down.  With
        ``drain=False`` pending requests fail with
        :class:`~repro.errors.ServiceClosed`; batches already executing
        still complete (their callers get real results).

        The drain is bounded: ``drain_timeout`` (default
        ``config.drain_timeout``; ``None`` there means unbounded) caps the
        *total* wait.  On expiry the still-unresolved requests fail with
        :class:`~repro.errors.ServingError` and the executor is abandoned
        without joining its threads — a backend hung inside a batch can
        never wedge shutdown.
        """
        if self._state == "new":
            self._state = "closed"
            if self._owns_index:
                self._index.close()
            return
        if self._state == "closed":
            return
        timeout = self._config.drain_timeout if drain_timeout is None else drain_timeout
        self._state = "draining"
        assert (
            self._loop is not None
            and self._wake is not None
            and self._admission_task is not None
        )
        budget_end = None if timeout is None else self._loop.time() + timeout
        timed_out = False
        if drain:
            self._wake.set()
            try:
                await asyncio.wait_for(self._admission_task, timeout)
            except asyncio.TimeoutError:
                timed_out = True
        else:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
            self._fail_pending(ServiceClosed("service stopped without draining"))
        # Snapshot the riders of in-flight batches *before* any cancellation:
        # cancelling a batch task runs its cleanup (which forgets its riders),
        # and the abandoned callers must still receive an error.
        abandoned = list(self._inflight_riders)
        if self._inflight and not timed_out:
            remaining = None if budget_end is None else max(0.0, budget_end - self._loop.time())
            gather = asyncio.gather(*list(self._inflight), return_exceptions=True)
            try:
                await asyncio.wait_for(gather, remaining)
            except asyncio.TimeoutError:
                timed_out = True
        if timed_out:
            for task in list(self._inflight):
                task.cancel()
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
            error = ServingError(
                f"stop() drain did not finish within drain_timeout={timeout}s; "
                "the remaining requests were abandoned"
            )
            self._fail_pending(error)
            for request in abandoned:
                if not request.future.done():
                    request.future.set_exception(error)
                    self._stats.record_failure(1)
        self._state = "closed"
        if self._owns_executor and self._executor is not None:
            # After a timed-out drain a worker thread may still be wedged in a
            # batch; joining it would reintroduce the unbounded wait.
            self._executor.shutdown(wait=not timed_out, cancel_futures=timed_out)
        if self._owns_index:
            self._index.close()

    async def __aenter__(self) -> "SearchService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- submission ---------------------------------------------------------------

    async def submit(
        self,
        vector: np.ndarray,
        *,
        k: int = 10,
        metric: "str | Metric | None" = None,
        weights: np.ndarray | None = None,
        subspace: np.ndarray | None = None,
        mode: str = "exact",
        backend: str | None = None,
        approx_params: "dict | None" = None,
        timeout: float | None = None,
    ) -> SearchResult:
        """Submit one query and await its result.

        The arguments mirror the :class:`~repro.api.query.Query` fields; the
        query is validated here, at the service boundary (bad ``k``, bad
        weights, non-finite vectors, unknown ``approx_params`` keys all raise
        :class:`~repro.errors.QueryError` before anything queues).  Raises
        :class:`~repro.errors.QueueFull` when admission control rejects the
        submission and :class:`~repro.errors.ServiceClosed` when the service
        is not running.

        ``timeout`` is a per-request deadline in seconds: a request that has
        not *started executing* within it fails with
        :class:`~repro.errors.DeadlineExceeded` — and is evicted from its
        micro-batch before the batch runs, so an expired request never
        spends backend work (unlike ``asyncio.wait_for``, which abandons the
        wait but lets the work proceed).
        """
        if self._state != "running":
            raise ServiceClosed(f"service is not accepting requests (state {self._state!r})")
        if timeout is not None and timeout <= 0:
            raise ServingError(f"timeout must be positive, got {timeout}")
        query = Query(
            vector,
            k=k,
            metric=metric,
            weights=weights,
            subspace=subspace,
            mode=mode,
            backend=backend,
            approx_params=approx_params,
        )
        if query.is_batch:
            raise ServingError(
                "submit() takes one query vector; answer whole batches "
                "directly via Index.answer(Query(matrix, ...))"
            )
        if self._queued_requests() >= self._config.max_queue:
            # A full queue may be holding slots for callers that already
            # gave up (cancelled futures, e.g. asyncio.wait_for timeouts);
            # purge those before rejecting live traffic on their account.
            self._drop_dead_requests()
        if self._queued_requests() >= self._config.max_queue:
            self._stats.record_rejection()
            raise QueueFull(
                f"serving queue is full ({self._config.max_queue} requests "
                "waiting or executing)"
            )
        assert self._loop is not None and self._wake is not None
        now = self._loop.time()
        request = _PendingRequest(
            sequence=next(self._sequence),
            query=query,
            # approx_params is frozen (hashable); queries with different
            # knobs must never share a micro-batch — they would otherwise
            # silently run with one request's recall settings.
            batch_key=(
                query.k,
                query.mode,
                query.backend,
                query.metric_spec_key(),
                query.approx_params,
            ),
            signature=self._policy.signature(query),
            future=self._loop.create_future(),
            arrival=now,
            deadline=now + self._config.latency_budget,
            expiry=None if timeout is None else now + timeout,
        )
        self._pending.append(request)
        self._stats.record_submit()
        self._wake.set()
        return await request.future

    # -- admission ----------------------------------------------------------------

    async def _admission_loop(self) -> None:
        """Run the admission passes, containing any failure.

        An exception escaping the passes (most plausibly a user-supplied
        admission policy misbehaving) must not leave submitters awaiting
        futures nobody will ever resolve: the service flips to ``"broken"``
        (submissions are refused), every queued request fails with a
        :class:`~repro.errors.ServingError` carrying the cause, and
        :meth:`stop` still shuts the service down cleanly.
        """
        try:
            await self._admission_passes()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if self._state == "running":
                self._state = "broken"
            self._fail_pending(ServingError(f"the admission loop failed: {exc!r}"))

    def _fail_pending(self, error: Exception) -> None:
        """Fail every queued request with ``error``, keeping the stats exact
        (cancelled callers count as cancelled, the rest as failed)."""
        failed = cancelled = 0
        while self._pending:
            request = self._pending.popleft()
            if request.future.done():
                cancelled += 1
            else:
                request.future.set_exception(error)
                failed += 1
        if cancelled:
            self._stats.record_cancellations(cancelled)
        if failed:
            self._stats.record_failure(failed)

    async def _admission_passes(self) -> None:
        """Coalesce pending requests into micro-batches under the budget.

        One pass per wake-up: group the queue into compatible runs, flush
        every run that is due (full, past the oldest member's deadline, or
        draining), otherwise sleep until the earliest deadline or the next
        submission — a monotonic-clock timer wheel of size one.
        """
        assert self._loop is not None and self._wake is not None
        while True:
            self._drop_dead_requests()
            self._expire_requests(self._loop.time())
            if not self._pending:
                if self._state == "draining":
                    return
                await self._wait_for_wake(None)
                continue
            now = self._loop.time()
            runs: dict[tuple, list[_PendingRequest]] = {}
            for request in self._pending:
                runs.setdefault(request.batch_key, []).append(request)
            due = [
                run
                for run in runs.values()
                if self._state == "draining"
                or len(run) >= self._config.max_batch_size
                or now >= run[0].deadline
            ]
            if due:
                for run in due:
                    self._dispatch(run)
                continue
            next_deadline = min(run[0].deadline for run in runs.values())
            expiries = [
                request.expiry for request in self._pending if request.expiry is not None
            ]
            if expiries:
                # Wake early enough to evict expired requests on time, not
                # just when the next batch deadline happens to come around.
                next_deadline = min(next_deadline, min(expiries))
            await self._wait_for_wake(max(0.0, next_deadline - now))

    async def _wait_for_wake(self, timeout: float | None) -> None:
        assert self._wake is not None
        if timeout is None:
            await self._wake.wait()
        else:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        self._wake.clear()

    def _queued_requests(self) -> int:
        """Requests occupying the bounded queue: waiting *or* dispatched.

        Counting dispatched-but-unfinished requests keeps the ``max_queue``
        backpressure contract honest under sustained overload — otherwise
        every budget expiry would move the backlog into the (unbounded)
        executor queue and :class:`~repro.errors.QueueFull` would never
        fire.
        """
        return len(self._pending) + self._inflight_requests

    def _drop_dead_requests(self) -> None:
        """Forget queued requests whose futures are already done.

        A caller that cancels its ``submit`` (a client timeout) must not keep
        occupying a ``max_queue`` slot, ride a batch whose answer nobody
        reads, or count as completed — the request is simply dropped.
        """
        dead = sum(1 for request in self._pending if request.future.done())
        if dead:
            self._stats.record_cancellations(dead)
            self._pending = deque(
                request for request in self._pending if not request.future.done()
            )

    def _expire_requests(self, now: float) -> None:
        """Fail queued requests that outlived their per-request deadline.

        Expiry is checked again at execution time (:meth:`_live_riders`), so
        a request can never ride a batch after its deadline; evicting here
        just delivers the :class:`~repro.errors.DeadlineExceeded` promptly.
        """
        expired = 0
        for request in self._pending:
            if (
                request.expiry is not None
                and now >= request.expiry
                and not request.future.done()
            ):
                request.future.set_exception(
                    DeadlineExceeded(
                        f"request {request.sequence} missed its deadline after "
                        f"waiting {now - request.arrival:.3f}s for admission"
                    )
                )
                expired += 1
        if expired:
            self._stats.record_expirations(expired)
            self._pending = deque(
                request for request in self._pending if not request.future.done()
            )

    def _dispatch(self, run: list[_PendingRequest]) -> None:
        """Group one compatible run into micro-batches and start them."""
        assert self._loop is not None
        # Group before dequeuing: if a (user-supplied) policy raises, the run
        # is still pending and the loop's failure guard can fail its futures.
        groups = self._policy.group(
            [request.signature for request in run],
            max_batch_size=self._config.max_batch_size,
        )
        if sorted(index for group in groups for index in group) != list(range(len(run))):
            raise ServingError(
                f"admission policy {self._policy.name!r} returned an invalid "
                f"partition of a {len(run)}-request run: {groups!r}"
            )
        members = set(run)
        self._pending = deque(
            request for request in self._pending if request not in members
        )
        for indices in groups:
            requests = [run[index] for index in indices]
            self._inflight_requests += len(requests)
            self._inflight_riders.update(requests)
            task = self._loop.create_task(self._execute(requests))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    # -- execution ----------------------------------------------------------------

    async def _execute(self, requests: list[_PendingRequest]) -> None:
        """Run one micro-batch on the executor and resolve its futures."""
        try:
            await self._execute_batch(requests)
        finally:
            # Dispatched requests stop counting against max_queue only once
            # their batch is done (see _queued_requests).
            self._inflight_requests -= len(requests)
            self._inflight_riders.difference_update(requests)

    def _live_riders(self, requests: list[_PendingRequest]) -> list[_PendingRequest]:
        """The riders still worth executing for: not cancelled, not expired.

        Called immediately before every (re-)execution, so an expired request
        is evicted *before* it rides a batch — failing with
        :class:`~repro.errors.DeadlineExceeded` instead of spending backend
        work on an answer its caller already wrote off.
        """
        assert self._loop is not None
        live = [request for request in requests if not request.future.done()]
        if len(live) < len(requests):
            self._stats.record_cancellations(len(requests) - len(live))
        now = self._loop.time()
        expired = [
            request
            for request in live
            if request.expiry is not None and now >= request.expiry
        ]
        if expired:
            for request in expired:
                request.future.set_exception(
                    DeadlineExceeded(
                        f"request {request.sequence} missed its deadline after "
                        f"{now - request.arrival:.3f}s, before its batch executed"
                    )
                )
            self._stats.record_expirations(len(expired))
            live = [request for request in live if not request.future.done()]
        return live

    def _fail_riders(self, requests: list[_PendingRequest], error: Exception) -> None:
        """Propagate one error to every rider still awaiting its future."""
        failed = 0
        for request in requests:
            if not request.future.done():
                request.future.set_exception(error)
                failed += 1
        if failed:
            self._stats.record_failure(failed)

    async def _execute_batch(self, requests: list[_PendingRequest]) -> None:
        assert self._loop is not None
        admitted = self._loop.time()
        attempt = 0
        while True:
            # The rider set can shrink between attempts (cancellations or
            # deadline expiries during backoff), so the batch query is
            # rebuilt per attempt from the surviving riders.
            requests = self._live_riders(requests)
            if not requests:
                return
            batch_query = self._coalesce([request.query for request in requests])
            try:
                (
                    batch_result,
                    cost_delta,
                    batch_seconds,
                    backend,
                    failed_over,
                ) = await self._loop.run_in_executor(
                    self._executor, self._answer_batch, batch_query
                )
                break
            except TransientBackendError as exc:
                if attempt < self._config.max_retries and self._retry_budget.try_acquire():
                    self._stats.record_retry()
                    await asyncio.sleep(self._retry_policy.delay(attempt))
                    attempt += 1
                    continue
                self._fail_riders(requests, exc)
                return
            except Exception as exc:  # propagate to every rider of the batch
                self._fail_riders(requests, exc)
                return
        if failed_over:
            self._stats.record_failover()
        done = self._loop.time()
        delivered = 0
        for request, result in zip(requests, batch_result.results):
            if not request.future.done():
                request.future.set_result(result)
                delivered += 1
        if delivered < len(requests):
            # Riders abandoned mid-execution (client timeout while the batch
            # ran) are cancellations, not completions — the work happened,
            # but nobody received the answer.
            self._stats.record_cancellations(len(requests) - delivered)
        self._stats.record_batch(
            BatchStats(
                batch_size=len(requests),
                sequence_numbers=tuple(request.sequence for request in requests),
                queue_waits=tuple(admitted - request.arrival for request in requests),
                batch_seconds=batch_seconds,
                cost=cost_delta,
                backend=backend,
            ),
            [done - request.arrival for request in requests],
            delivered=delivered,
        )

    def _breaker(self, backend: str) -> CircuitBreaker:
        """The circuit breaker of one backend, created on first use."""
        with self._breaker_lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(
                    backend,
                    threshold=self._config.breaker_threshold,
                    cooldown=self._config.breaker_cooldown,
                )
                self._breakers[backend] = breaker
            return breaker

    def _answer_batch(
        self, batch_query: Query
    ) -> tuple[BatchSearchResult, object, float, str, bool]:
        """Worker-thread body: plan, execute with failover, attribute cost.

        The snapshot/delta pair brackets exactly this batch — with the
        default single-worker executor batches serialise, so the delta is
        the batch's own charge and the live account is never mutated for
        bookkeeping (see :meth:`repro.engine.cost.CostModel.delta_since`).

        Execution walks the plan's failover chain (planned backend first,
        when ``config.failover`` is on), skipping backends whose circuit
        breaker is open; each backend's outcome feeds its breaker.  If the
        whole chain fails and any failure was transient, the *transient*
        error is raised so the async retry layer re-runs the chain after
        backoff; a purely persistent exhaustion raises
        :class:`~repro.errors.FailoverExhausted` (single-entry chains
        re-raise the original error unchanged).  The last element of the
        returned tuple flags whether a non-planned backend answered.
        """
        fault_point("executor.dispatch")
        before = self._index.cost.snapshot()
        plan = self._index.plan(batch_query)
        chain = plan.failover_chain() if self._config.failover else (plan.backend_name,)
        started = time.perf_counter()
        attempts: list[tuple[str, BackendError]] = []
        transient: TransientBackendError | None = None

        def try_backend(name: str) -> BatchSearchResult | None:
            # Executing through the index (not the raw backend) keeps the
            # live-update overlay in the path: a failover substitute answers
            # over the same pinned epoch + delta tail the planned backend
            # would have, so served answers stay bitwise identical to
            # Index.answer even while updates stream in.
            nonlocal transient
            breaker = self._breaker(name)
            try:
                result = self._index.execute(batch_query, backend=name, plan=plan)
            except BackendError as exc:
                breaker.record_failure()
                attempts.append((name, exc))
                if transient is None and isinstance(exc, TransientBackendError):
                    transient = exc
                return None
            breaker.record_success()
            return result

        tried = 0
        for name in chain:
            if not self._breaker(name).allow():
                continue
            tried += 1
            result = try_backend(name)
            if result is not None:
                return (
                    result,
                    self._index.cost.delta_since(before),
                    time.perf_counter() - started,
                    name,
                    name != plan.backend_name,
                )
        if tried == 0:
            # Every breaker in the chain is open: failing fast forever would
            # never rediscover a recovered backend, so force one probe
            # through the planned backend.
            result = try_backend(plan.backend_name)
            if result is not None:
                return (
                    result,
                    self._index.cost.delta_since(before),
                    time.perf_counter() - started,
                    plan.backend_name,
                    False,
                )
        if transient is not None:
            raise transient
        if len(attempts) == 1:
            raise attempts[0][1]
        summary = "; ".join(f"{name}: {error}" for name, error in attempts)
        raise FailoverExhausted(
            f"all {len(attempts)} backends of the failover chain failed ({summary})",
            attempts=attempts,
        )

    @staticmethod
    def _coalesce(queries: list[Query]) -> Query:
        """One batch query carrying every rider's vector, first rider's spec.

        All riders share a batch key, so ``k`` / metric / mode / backend pin
        / approx knobs are interchangeable; batches of one still take the
        batch path so the
        execution shape is uniform (the batch engines are bitwise identical
        to their single-query paths, which the serving test suite re-pins
        end to end).
        """
        first = queries[0]
        vectors = np.stack([query.single_vector for query in queries])
        return Query(
            vectors,
            k=first.k,
            metric=first.metric,
            weights=first.weights,
            subspace=first.subspace,
            mode=first.mode,
            batch=True,
            backend=first.backend,
            approx_params=first.approx_params,
            normalize_weights=first.normalize_weights,
        )

    # -- introspection ------------------------------------------------------------

    @property
    def index(self) -> "Index":
        """The index every micro-batch executes against."""
        return self._index

    @property
    def config(self) -> ServingConfig:
        """The (frozen) serving configuration."""
        return self._config

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission policy grouping flushed runs into batches."""
        return self._policy

    @property
    def is_running(self) -> bool:
        """Whether the service currently accepts submissions."""
        return self._state == "running"

    def stats(self) -> ServingStats:
        """An immutable snapshot of the serving statistics so far."""
        return self._stats.snapshot(
            pending=len(self._pending), breakers=self._breaker_snapshots()
        )

    def health(self) -> ServiceHealth:
        """A point-in-time operational snapshot (see :class:`ServiceHealth`).

        Complements :meth:`stats`: where the stats aggregate the service's
        whole life, the health snapshot is what an operator acts on *now* —
        acceptance state, queue depth, remaining retry budget, and every
        backend circuit breaker's state.
        """
        return ServiceHealth(
            running=self.is_running,
            pending=len(self._pending),
            retry_budget_remaining=self._retry_budget.remaining,
            breakers=self._breaker_snapshots(),
        )

    def _breaker_snapshots(self):
        with self._breaker_lock:
            names = sorted(self._breakers)
            return tuple(self._breakers[name].snapshot() for name in names)


async def replay_open_loop(
    service: SearchService,
    queries,
    schedule,
    **submit_kwargs,
) -> list[SearchResult]:
    """Replay an open-loop workload: submit query ``i`` at its offset.

    ``schedule`` is an iterable of arrival offsets in seconds (an
    :class:`~repro.workload.arrivals.ArrivalSchedule` fits directly) measured
    from the moment this coroutine starts; it must provide exactly one offset
    per query — a silent prefix replay would corrupt any downstream
    query/result pairing.  Submissions happen on schedule regardless of
    earlier completions — that is what makes the load open-loop — and the
    results come back aligned with ``queries``.  The remaining keyword
    arguments go to :meth:`SearchService.submit` verbatim.
    """
    offsets = [float(offset) for offset in schedule]
    vectors = list(queries)
    if len(offsets) != len(vectors):
        raise ServingError(
            f"the arrival schedule has {len(offsets)} offsets for "
            f"{len(vectors)} queries; provide exactly one offset per query"
        )
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def submit_at(offset: float, vector) -> SearchResult:
        delay = started + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await service.submit(vector, **submit_kwargs)

    # Wait for *every* submission before surfacing a failure: bailing out on
    # the first error would orphan the still-running sibling tasks (and
    # swallow their exceptions).  Callers that want per-query outcomes under
    # overload (some rejected, some served) should submit themselves and
    # inspect each result, as examples/async_serving.py does.
    outcomes = await asyncio.gather(
        *(submit_at(offset, vector) for offset, vector in zip(offsets, vectors)),
        return_exceptions=True,
    )
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            raise outcome
    return list(outcomes)
