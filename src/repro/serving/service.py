"""The asyncio query-serving front end.

:class:`SearchService` turns a stream of independent single-query submissions
into the micro-batches the batch engines are fast at.  Callers ``await
service.submit(vector, k=...)`` and get their own
:class:`~repro.core.result.SearchResult` back; between submission and
execution the service coalesces compatible requests (same ``k``, metric,
mode, backend pin) under a **latency budget**: the oldest waiting request
never waits longer than the budget for peers to share its batch, and a full
batch flushes immediately.  Execution happens through the PR 3 platform —
``Index.answer(Query(..., batch=True))`` on a worker executor, so the event
loop never blocks and the planner keeps choosing the backend (including the
sharded thread pool) exactly as it would for a direct call.  Served answers
are therefore **bitwise identical** to direct ``Index.answer`` calls.

Admission control is explicit: the waiting queue is bounded and overflow
raises :class:`~repro.errors.QueueFull` at the submitter, the standard
load-shedding contract of an open system.  Shutdown drains: pending requests
flush (budget waived), in-flight batches finish, then the executor closes.

Typical usage::

    from repro.api import Index
    from repro.serving import SearchService, ServingConfig

    index = Index.build(histograms)
    async with SearchService(index, config=ServingConfig(latency_budget=0.002)) as service:
        result = await service.submit(histograms[42], k=10, metric="histogram")
    print(service.stats())
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.api.query import Query
from repro.core.result import BatchSearchResult, SearchResult
from repro.errors import QueueFull, ServiceClosed, ServingError
from repro.metrics.base import Metric
from repro.serving.admission import AdmissionPolicy, resolve_admission
from repro.serving.stats import BatchStats, ServingStats, StatsCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.index import Index


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs of a :class:`SearchService`.

    Attributes
    ----------
    latency_budget:
        Seconds the *oldest* request of a compatible run may wait for peers
        before its micro-batch flushes regardless of size.  ``0.0`` disables
        coalescing-by-time (every admission pass flushes whatever is
        pending), which is the honest one-query-per-submit configuration.
    max_batch_size:
        Upper bound on queries per micro-batch; a compatible run reaching
        this size flushes immediately, before the budget expires.
    max_queue:
        Bound on requests occupying the service — waiting for admission or
        dispatched and still executing.  The submission that would exceed it
        is rejected with :class:`~repro.errors.QueueFull` — the caller sheds
        load instead of the backlog growing without bound (in the pending
        queue or, invisibly, in the executor's).
    admission:
        Micro-batch formation policy: ``"fifo"``, ``"overlap"``, or a ready
        :class:`~repro.serving.admission.AdmissionPolicy` instance.
    executor_workers:
        Worker threads executing batches.  The default 1 serialises batches,
        which keeps the index's shared :class:`~repro.engine.cost.CostModel`
        single-owner (the lock-free charging contract) and makes per-batch
        cost deltas exact; raise it only with an index whose backends manage
        their own accounts, or pass an executor to :class:`SearchService`.
    """

    latency_budget: float = 0.002
    max_batch_size: int = 32
    max_queue: int = 1024
    admission: "str | AdmissionPolicy" = "fifo"
    executor_workers: int = 1

    def __post_init__(self) -> None:
        if self.latency_budget < 0:
            raise ServingError("latency_budget must be non-negative")
        if self.max_batch_size < 1:
            raise ServingError("max_batch_size must be at least 1")
        if self.max_queue < 1:
            raise ServingError("max_queue must be at least 1")
        if self.executor_workers < 1:
            raise ServingError("executor_workers must be at least 1")


@dataclass(eq=False)
class _PendingRequest:
    """One submitted query waiting for admission (identity-hashed)."""

    sequence: int
    query: Query
    batch_key: tuple
    signature: tuple[int, ...] | None
    future: asyncio.Future
    arrival: float
    deadline: float


class SearchService:
    """Latency-budget micro-batching front end over one :class:`Index`.

    The service has a simple lifecycle: ``await start()`` (or ``async
    with``), any number of concurrent :meth:`submit` calls, ``await stop()``.
    One admission task owns the pending queue; batches execute on a worker
    executor so the event loop stays responsive while NumPy crunches.
    """

    def __init__(
        self,
        index: "Index",
        *,
        config: ServingConfig | None = None,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        self._index = index
        self._config = config if config is not None else ServingConfig()
        self._policy = resolve_admission(self._config.admission)
        self._executor = executor
        self._owns_executor = executor is None
        self._pending: deque[_PendingRequest] = deque()
        self._inflight: set[asyncio.Task] = set()
        self._inflight_requests = 0
        self._stats = StatsCollector()
        self._sequence = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._admission_task: asyncio.Task | None = None
        self._state = "new"  # new -> running -> draining -> closed

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "SearchService":
        """Start the admission loop (idempotence is an error: one life only)."""
        if self._state != "new":
            raise ServingError(f"cannot start a service in state {self._state!r}")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._config.executor_workers,
                thread_name_prefix="repro-serving",
            )
        self._state = "running"
        self._admission_task = asyncio.create_task(
            self._admission_loop(), name="repro-serving-admission"
        )
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (the default) every pending request is flushed —
        the latency budget is waived, batches still form — and in-flight
        batches complete before the executor shuts down.  With
        ``drain=False`` pending requests fail with
        :class:`~repro.errors.ServiceClosed`; batches already executing
        still complete (their callers get real results).
        """
        if self._state == "new":
            self._state = "closed"
            return
        if self._state == "closed":
            return
        self._state = "draining"
        assert self._wake is not None and self._admission_task is not None
        if drain:
            self._wake.set()
            await self._admission_task
        else:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
            self._fail_pending(ServiceClosed("service stopped without draining"))
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._state = "closed"
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "SearchService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- submission ---------------------------------------------------------------

    async def submit(
        self,
        vector: np.ndarray,
        *,
        k: int = 10,
        metric: "str | Metric | None" = None,
        weights: np.ndarray | None = None,
        subspace: np.ndarray | None = None,
        mode: str = "exact",
        backend: str | None = None,
    ) -> SearchResult:
        """Submit one query and await its result.

        The arguments mirror the :class:`~repro.api.query.Query` fields; the
        query is validated here, at the service boundary (bad ``k``, bad
        weights, non-finite vectors all raise
        :class:`~repro.errors.QueryError` before anything queues).  Raises
        :class:`~repro.errors.QueueFull` when admission control rejects the
        submission and :class:`~repro.errors.ServiceClosed` when the service
        is not running.
        """
        if self._state != "running":
            raise ServiceClosed(f"service is not accepting requests (state {self._state!r})")
        query = Query(
            vector,
            k=k,
            metric=metric,
            weights=weights,
            subspace=subspace,
            mode=mode,
            backend=backend,
        )
        if query.is_batch:
            raise ServingError(
                "submit() takes one query vector; answer whole batches "
                "directly via Index.answer(Query(matrix, ...))"
            )
        if self._queued_requests() >= self._config.max_queue:
            # A full queue may be holding slots for callers that already
            # gave up (cancelled futures, e.g. asyncio.wait_for timeouts);
            # purge those before rejecting live traffic on their account.
            self._drop_dead_requests()
        if self._queued_requests() >= self._config.max_queue:
            self._stats.record_rejection()
            raise QueueFull(
                f"serving queue is full ({self._config.max_queue} requests "
                "waiting or executing)"
            )
        assert self._loop is not None and self._wake is not None
        now = self._loop.time()
        request = _PendingRequest(
            sequence=next(self._sequence),
            query=query,
            batch_key=(query.k, query.mode, query.backend, query.metric_spec_key()),
            signature=self._policy.signature(query),
            future=self._loop.create_future(),
            arrival=now,
            deadline=now + self._config.latency_budget,
        )
        self._pending.append(request)
        self._stats.record_submit()
        self._wake.set()
        return await request.future

    # -- admission ----------------------------------------------------------------

    async def _admission_loop(self) -> None:
        """Run the admission passes, containing any failure.

        An exception escaping the passes (most plausibly a user-supplied
        admission policy misbehaving) must not leave submitters awaiting
        futures nobody will ever resolve: the service flips to ``"broken"``
        (submissions are refused), every queued request fails with a
        :class:`~repro.errors.ServingError` carrying the cause, and
        :meth:`stop` still shuts the service down cleanly.
        """
        try:
            await self._admission_passes()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if self._state == "running":
                self._state = "broken"
            self._fail_pending(ServingError(f"the admission loop failed: {exc!r}"))

    def _fail_pending(self, error: Exception) -> None:
        """Fail every queued request with ``error``, keeping the stats exact
        (cancelled callers count as cancelled, the rest as failed)."""
        failed = cancelled = 0
        while self._pending:
            request = self._pending.popleft()
            if request.future.done():
                cancelled += 1
            else:
                request.future.set_exception(error)
                failed += 1
        if cancelled:
            self._stats.record_cancellations(cancelled)
        if failed:
            self._stats.record_failure(failed)

    async def _admission_passes(self) -> None:
        """Coalesce pending requests into micro-batches under the budget.

        One pass per wake-up: group the queue into compatible runs, flush
        every run that is due (full, past the oldest member's deadline, or
        draining), otherwise sleep until the earliest deadline or the next
        submission — a monotonic-clock timer wheel of size one.
        """
        assert self._loop is not None and self._wake is not None
        while True:
            self._drop_dead_requests()
            if not self._pending:
                if self._state == "draining":
                    return
                await self._wait_for_wake(None)
                continue
            now = self._loop.time()
            runs: dict[tuple, list[_PendingRequest]] = {}
            for request in self._pending:
                runs.setdefault(request.batch_key, []).append(request)
            due = [
                run
                for run in runs.values()
                if self._state == "draining"
                or len(run) >= self._config.max_batch_size
                or now >= run[0].deadline
            ]
            if due:
                for run in due:
                    self._dispatch(run)
                continue
            next_deadline = min(run[0].deadline for run in runs.values())
            await self._wait_for_wake(max(0.0, next_deadline - now))

    async def _wait_for_wake(self, timeout: float | None) -> None:
        assert self._wake is not None
        if timeout is None:
            await self._wake.wait()
        else:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        self._wake.clear()

    def _queued_requests(self) -> int:
        """Requests occupying the bounded queue: waiting *or* dispatched.

        Counting dispatched-but-unfinished requests keeps the ``max_queue``
        backpressure contract honest under sustained overload — otherwise
        every budget expiry would move the backlog into the (unbounded)
        executor queue and :class:`~repro.errors.QueueFull` would never
        fire.
        """
        return len(self._pending) + self._inflight_requests

    def _drop_dead_requests(self) -> None:
        """Forget queued requests whose futures are already done.

        A caller that cancels its ``submit`` (a client timeout) must not keep
        occupying a ``max_queue`` slot, ride a batch whose answer nobody
        reads, or count as completed — the request is simply dropped.
        """
        dead = sum(1 for request in self._pending if request.future.done())
        if dead:
            self._stats.record_cancellations(dead)
            self._pending = deque(
                request for request in self._pending if not request.future.done()
            )

    def _dispatch(self, run: list[_PendingRequest]) -> None:
        """Group one compatible run into micro-batches and start them."""
        assert self._loop is not None
        # Group before dequeuing: if a (user-supplied) policy raises, the run
        # is still pending and the loop's failure guard can fail its futures.
        groups = self._policy.group(
            [request.signature for request in run],
            max_batch_size=self._config.max_batch_size,
        )
        if sorted(index for group in groups for index in group) != list(range(len(run))):
            raise ServingError(
                f"admission policy {self._policy.name!r} returned an invalid "
                f"partition of a {len(run)}-request run: {groups!r}"
            )
        members = set(run)
        self._pending = deque(
            request for request in self._pending if request not in members
        )
        for indices in groups:
            requests = [run[index] for index in indices]
            self._inflight_requests += len(requests)
            task = self._loop.create_task(self._execute(requests))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    # -- execution ----------------------------------------------------------------

    async def _execute(self, requests: list[_PendingRequest]) -> None:
        """Run one micro-batch on the executor and resolve its futures."""
        try:
            await self._execute_batch(requests)
        finally:
            # Dispatched requests stop counting against max_queue only once
            # their batch is done (see _queued_requests).
            self._inflight_requests -= len(requests)

    async def _execute_batch(self, requests: list[_PendingRequest]) -> None:
        assert self._loop is not None
        live = [request for request in requests if not request.future.done()]
        if len(live) < len(requests):
            self._stats.record_cancellations(len(requests) - len(live))
            if not live:
                return
            requests = live
        admitted = self._loop.time()
        batch_query = self._coalesce([request.query for request in requests])
        try:
            batch_result, cost_delta, batch_seconds, backend = await self._loop.run_in_executor(
                self._executor, self._answer_batch, batch_query
            )
        except Exception as exc:  # propagate to every rider of the batch
            self._stats.record_failure(len(requests))
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        done = self._loop.time()
        delivered = 0
        for request, result in zip(requests, batch_result.results):
            if not request.future.done():
                request.future.set_result(result)
                delivered += 1
        if delivered < len(requests):
            # Riders abandoned mid-execution (client timeout while the batch
            # ran) are cancellations, not completions — the work happened,
            # but nobody received the answer.
            self._stats.record_cancellations(len(requests) - delivered)
        self._stats.record_batch(
            BatchStats(
                batch_size=len(requests),
                sequence_numbers=tuple(request.sequence for request in requests),
                queue_waits=tuple(admitted - request.arrival for request in requests),
                batch_seconds=batch_seconds,
                cost=cost_delta,
                backend=backend,
            ),
            [done - request.arrival for request in requests],
            delivered=delivered,
        )

    def _answer_batch(self, batch_query: Query) -> tuple[BatchSearchResult, object, float, str]:
        """Worker-thread body: plan, execute, attribute cost.

        The snapshot/delta pair brackets exactly this batch — with the
        default single-worker executor batches serialise, so the delta is
        the batch's own charge and the live account is never mutated for
        bookkeeping (see :meth:`repro.engine.cost.CostModel.delta_since`).
        """
        before = self._index.cost.snapshot()
        plan = self._index.plan(batch_query)
        started = time.perf_counter()
        result = plan.backend.answer(self._index, batch_query, plan.metric)
        batch_seconds = time.perf_counter() - started
        return result, self._index.cost.delta_since(before), batch_seconds, plan.backend_name

    @staticmethod
    def _coalesce(queries: list[Query]) -> Query:
        """One batch query carrying every rider's vector, first rider's spec.

        All riders share a batch key, so ``k`` / metric / mode / backend pin
        are interchangeable; batches of one still take the batch path so the
        execution shape is uniform (the batch engines are bitwise identical
        to their single-query paths, which the serving test suite re-pins
        end to end).
        """
        first = queries[0]
        vectors = np.stack([query.single_vector for query in queries])
        return Query(
            vectors,
            k=first.k,
            metric=first.metric,
            weights=first.weights,
            subspace=first.subspace,
            mode=first.mode,
            batch=True,
            backend=first.backend,
            normalize_weights=first.normalize_weights,
        )

    # -- introspection ------------------------------------------------------------

    @property
    def index(self) -> "Index":
        """The index every micro-batch executes against."""
        return self._index

    @property
    def config(self) -> ServingConfig:
        """The (frozen) serving configuration."""
        return self._config

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission policy grouping flushed runs into batches."""
        return self._policy

    @property
    def is_running(self) -> bool:
        """Whether the service currently accepts submissions."""
        return self._state == "running"

    def stats(self) -> ServingStats:
        """An immutable snapshot of the serving statistics so far."""
        return self._stats.snapshot(pending=len(self._pending))


async def replay_open_loop(
    service: SearchService,
    queries,
    schedule,
    **submit_kwargs,
) -> list[SearchResult]:
    """Replay an open-loop workload: submit query ``i`` at its offset.

    ``schedule`` is an iterable of arrival offsets in seconds (an
    :class:`~repro.workload.arrivals.ArrivalSchedule` fits directly) measured
    from the moment this coroutine starts; it must provide exactly one offset
    per query — a silent prefix replay would corrupt any downstream
    query/result pairing.  Submissions happen on schedule regardless of
    earlier completions — that is what makes the load open-loop — and the
    results come back aligned with ``queries``.  The remaining keyword
    arguments go to :meth:`SearchService.submit` verbatim.
    """
    offsets = [float(offset) for offset in schedule]
    vectors = list(queries)
    if len(offsets) != len(vectors):
        raise ServingError(
            f"the arrival schedule has {len(offsets)} offsets for "
            f"{len(vectors)} queries; provide exactly one offset per query"
        )
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def submit_at(offset: float, vector) -> SearchResult:
        delay = started + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await service.submit(vector, **submit_kwargs)

    # Wait for *every* submission before surfacing a failure: bailing out on
    # the first error would orphan the still-running sibling tasks (and
    # swallow their exceptions).  Callers that want per-query outcomes under
    # overload (some rejected, some served) should submit themselves and
    # inspect each result, as examples/async_serving.py does.
    outcomes = await asyncio.gather(
        *(submit_at(offset, vector) for offset, vector in zip(offsets, vectors)),
        return_exceptions=True,
    )
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            raise outcome
    return list(outcomes)
