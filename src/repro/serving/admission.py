"""Admission policies: how admitted requests become micro-batches.

When the :class:`~repro.serving.service.SearchService` decides to flush — the
oldest request's latency budget ran out, or enough compatible requests piled
up — the admission policy partitions the flushed requests into the
micro-batches that actually execute.  Policies are **pure** functions over
per-request dimension signatures, so they are measurable (and property
testable) in complete isolation from the asyncio machinery: same signatures
in, same groups out, always.

Two policies ship:

* :class:`FifoAdmission` — batches are consecutive runs in arrival order,
  the neutral baseline.
* :class:`OverlapAdmission` — the ROADMAP's *adaptive batch admission*:
  requests are grouped by predicted **dimension-order overlap**.  BOND's
  batch engines stream one fragment round at a time and share each fragment
  read across every query of the round that wants it; queries whose
  decreasing-``q_i`` orderings (Section 5.1) begin with the same dimensions
  therefore share almost all of their early — and most expensive, because
  pre-pruning — fragment traffic.  The signature is simply the first ``m``
  dimensions of the query's processing order, the same cheap ``argsort`` the
  searcher performs anyway, and grouping maximises signature overlap with the
  oldest waiting request so no query is starved.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.api.query import Query
from repro.core.ordering import DecreasingQueryOrdering
from repro.errors import ServingError


class AdmissionPolicy(abc.ABC):
    """Strategy turning a flushed run of requests into micro-batches."""

    #: Name used in configuration, stats and benchmark reports.
    name: str = "admission"

    def signature(self, query: Query) -> tuple[int, ...] | None:
        """The per-query grouping signature (computed once, at submit time).

        The default policy needs none; overlap-aware policies return a small
        tuple of dimension indices.  Must be cheap — it runs on the event
        loop for every submission.
        """
        return None

    @abc.abstractmethod
    def group(
        self, signatures: list[tuple[int, ...] | None], *, max_batch_size: int
    ) -> list[list[int]]:
        """Partition request indices ``0..len(signatures)-1`` into batches.

        Returns a list of index groups, each of size ``<= max_batch_size``;
        every index appears in exactly one group.  Index ``i`` is the
        ``i``-th request of the flushed run in arrival order, so ``[[0, 1],
        [2]]`` means "first two requests share a batch, the third runs
        alone".  Implementations must be deterministic: equal signature lists
        must produce equal groups (pinned by the serving test suite).
        """

    @staticmethod
    def _validate(signatures: list, max_batch_size: int) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be at least 1")
        if not signatures:
            raise ServingError("cannot group an empty run of requests")


class FifoAdmission(AdmissionPolicy):
    """Consecutive arrival-order runs — the neutral baseline policy."""

    name = "fifo"

    def group(
        self, signatures: list[tuple[int, ...] | None], *, max_batch_size: int
    ) -> list[list[int]]:
        self._validate(signatures, max_batch_size)
        indices = list(range(len(signatures)))
        return [
            indices[begin : begin + max_batch_size]
            for begin in range(0, len(indices), max_batch_size)
        ]


class OverlapAdmission(AdmissionPolicy):
    """Group by predicted dimension-order overlap (adaptive admission).

    Parameters
    ----------
    signature_dims:
        Length ``m`` of the dimension signature.  The first ``m`` dimensions
        of the decreasing-``q`` processing order dominate the shared fragment
        traffic (most pruning happens there), so small values (the default 16)
        already separate dissimilar queries; ``m`` values beyond the pruning
        horizon only dilute the overlap measure.
    """

    name = "overlap"

    def __init__(self, signature_dims: int = 16) -> None:
        if signature_dims < 1:
            raise ServingError("signature_dims must be at least 1")
        self.signature_dims = int(signature_dims)
        self._ordering = DecreasingQueryOrdering()

    def signature(self, query: Query) -> tuple[int, ...]:
        """The first ``m`` dimensions of the query's processing order.

        Weighted and subspace queries sign under the same ``w_i * q_i^2``
        keys the searcher will sort by (zero-weight / out-of-subspace
        dimensions sort last and never make the signature), so the signature
        predicts the *actual* fragment schedule, not the raw vector shape.
        """
        vector = query.single_vector
        weights = query.weights
        if query.subspace is not None:
            weights = np.zeros(query.dimensionality, dtype=np.float64)
            weights[query.subspace] = 1.0
        order = self._ordering.order(vector, weights=weights)
        return tuple(int(dim) for dim in order[: self.signature_dims])

    def group(
        self, signatures: list[tuple[int, ...] | None], *, max_batch_size: int
    ) -> list[list[int]]:
        """Greedy seeded grouping, anchored on the oldest waiting request.

        Repeatedly: take the earliest not-yet-grouped request as the batch
        seed (so budget-expired requests flush first — overlap never starves
        anyone), then fill the batch with the remaining requests of highest
        signature overlap with the seed, ties broken by arrival order.
        Requests without a signature overlap with nothing and fall back to
        arrival-order filling.
        """
        self._validate(signatures, max_batch_size)
        remaining = list(range(len(signatures)))
        groups: list[list[int]] = []
        while remaining:
            seed = remaining.pop(0)
            members = [seed]
            if remaining and max_batch_size > 1:
                seed_signature = signatures[seed]
                seed_set = frozenset(seed_signature) if seed_signature is not None else frozenset()
                ranked = sorted(
                    remaining,
                    key=lambda index: (
                        -self._overlap(seed_set, signatures[index]),
                        index,
                    ),
                )
                chosen = set(ranked[: max_batch_size - 1])
                # Keep arrival order inside the batch: responses and stats
                # then line up with submission order, like the fifo policy.
                members.extend(index for index in remaining if index in chosen)
                remaining = [index for index in remaining if index not in chosen]
            groups.append(members)
        return groups

    @staticmethod
    def _overlap(seed_set: frozenset, signature: tuple[int, ...] | None) -> int:
        if signature is None or not seed_set:
            return 0
        return len(seed_set.intersection(signature))


#: Registry of the built-in policies, keyed by configuration name.
ADMISSION_POLICIES = {
    FifoAdmission.name: FifoAdmission,
    OverlapAdmission.name: OverlapAdmission,
}


def resolve_admission(policy: "str | AdmissionPolicy") -> AdmissionPolicy:
    """Materialise a policy from a config value (name or ready instance)."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        factory = ADMISSION_POLICIES[policy]
    except (KeyError, TypeError):
        raise ServingError(
            f"unknown admission policy {policy!r}; known: {sorted(ADMISSION_POLICIES)}"
        ) from None
    return factory()
