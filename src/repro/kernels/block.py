"""Per-metric fused block kernels.

A *block* is the ``(n_candidates, m)`` value matrix of one pruning period: m
dimension fragments gathered for the surviving candidates in one call.  A
:class:`BlockKernel` turns that block into the ``(n_candidates, m)`` matrix of
per-dimension contributions with a single vectorised expression instead of m
Python-level round trips.

Bitwise equivalence contract
----------------------------
Every kernel must produce, in column ``j``, exactly the float64 values that
``metric.contributions(block[:, j], query_values[j], dimension=dimensions[j])``
would produce — same operations, same operand order — so that folding the
columns left to right (:func:`accumulate_columns`) yields partial scores that
are bit-for-bit identical to the seed per-dimension loop.  The property tests
in ``tests/test_kernels.py`` enforce this with ``np.array_equal``.

Narrow-fragment contract
------------------------
``accumulate_scan`` may receive fragment columns in a *narrow* store dtype
(float32/float16 — see :mod:`repro.storage.formats`).  Kernels must then
produce exactly what the same scan over the float64-**widened** columns
would produce: all arithmetic and accumulation stays float64, with the
narrow coefficients widened exactly on entry.  The fused kernels get this
for free — their query scalars are ``np.float64`` and their ``out=`` targets
are float64 workspaces, so numpy selects the float64 loop and widens each
narrow operand element exactly — but any expression that lets a narrow
column meet a *Python* scalar without a float64 ``out`` would stay narrow
under NEP 50 promotion and silently quantise every downstream partial
score; :class:`GenericBlockKernel` therefore widens explicitly before
calling the scalar metric.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanSimilarity, SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean


class BlockKernel(abc.ABC):
    """Computes one pruning period's contributions in a single fused call."""

    #: Name used in reports and benchmark output.
    name: str = "block-kernel"

    @abc.abstractmethod
    def contribution_block(
        self, values: np.ndarray, query_values: np.ndarray, dimensions: np.ndarray
    ) -> np.ndarray:
        """Per-dimension contributions for a whole block.

        Parameters
        ----------
        values:
            ``(n_candidates, m)`` block of coefficients, column ``j`` holding
            dimension ``dimensions[j]`` for every candidate.
        query_values:
            The query's coefficients of those m dimensions (length m).
        dimensions:
            The original dimension indices (length m); weighted kernels use
            them to select weights, unweighted kernels ignore them.

        Returns
        -------
        ``(n_candidates, m)`` matrix whose column ``j`` equals
        ``metric.contributions(values[:, j], query_values[j], dimension=dimensions[j])``.
        """

    def accumulate_scan(
        self,
        columns: "list[np.ndarray]",
        query_values: np.ndarray,
        dimensions: np.ndarray,
        scores: np.ndarray,
        workspace: np.ndarray,
    ) -> None:
        """Fold whole fragment columns into ``scores`` without allocating.

        The zero-copy fast path of the full-bitmap phase: ``columns[j]`` is
        the *entire* contiguous fragment of dimension ``dimensions[j]`` (no
        candidate gather needed while every vector is alive), and per-column
        temporaries land in the caller-provided ``workspace`` so the scan
        touches no fresh memory.  Contributions are computed and added
        per column, left to right — the same operations in the same order as
        the per-dimension loop, hence bitwise-identical partial scores.

        The default implementation materialises each contribution column via
        :meth:`contribution_block`-equivalent math without the workspace;
        concrete kernels override it with true in-place expressions.
        """
        for position in range(len(columns)):
            block = self.contribution_block(
                columns[position][:, None],
                query_values[position : position + 1],
                dimensions[position : position + 1],
            )
            scores += block[:, 0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class HistogramIntersectionKernel(BlockKernel):
    """Fused ``min(h_i, q_i)`` over a block (histogram intersection)."""

    name = "histogram-block"

    def contribution_block(
        self, values: np.ndarray, query_values: np.ndarray, dimensions: np.ndarray
    ) -> np.ndarray:
        return np.minimum(values, query_values[None, :])

    def accumulate_scan(self, columns, query_values, dimensions, scores, workspace):
        for position in range(len(columns)):
            np.minimum(columns[position], query_values[position], out=workspace)
            scores += workspace


class SquaredEuclideanKernel(BlockKernel):
    """Fused ``(v_i - q_i)^2`` over a block (squared Euclidean distance)."""

    name = "euclidean-block"

    def contribution_block(
        self, values: np.ndarray, query_values: np.ndarray, dimensions: np.ndarray
    ) -> np.ndarray:
        difference = values - query_values[None, :]
        return difference * difference

    def accumulate_scan(self, columns, query_values, dimensions, scores, workspace):
        for position in range(len(columns)):
            np.subtract(columns[position], query_values[position], out=workspace)
            np.multiply(workspace, workspace, out=workspace)
            scores += workspace


class WeightedSquaredEuclideanKernel(BlockKernel):
    """Fused ``w_i (v_i - q_i)^2`` over a block (weighted squared Euclidean).

    The multiplication order matches the scalar metric — ``(w * d) * d`` —
    so the products round identically to the per-dimension path.
    """

    name = "weighted-euclidean-block"

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64)
        self._scaled_scratch = np.empty(0, dtype=np.float64)

    def contribution_block(
        self, values: np.ndarray, query_values: np.ndarray, dimensions: np.ndarray
    ) -> np.ndarray:
        difference = values - query_values[None, :]
        return self._weights[dimensions][None, :] * difference * difference

    def accumulate_scan(self, columns, query_values, dimensions, scores, workspace):
        # (w * d) * d, matching the scalar metric's multiplication order
        # (w * d == d * w bitwise: IEEE multiplication commutes).  Needs a
        # second temporary for w*d, kept on the kernel and reused.
        if self._scaled_scratch.shape[0] < workspace.shape[0]:
            self._scaled_scratch = np.empty(workspace.shape[0], dtype=np.float64)
        scaled = self._scaled_scratch[: workspace.shape[0]]
        for position in range(len(columns)):
            np.subtract(columns[position], query_values[position], out=workspace)
            np.multiply(workspace, self._weights[int(dimensions[position])], out=scaled)
            np.multiply(scaled, workspace, out=scaled)
            scores += scaled


class GenericBlockKernel(BlockKernel):
    """Fallback for metrics without a fused kernel: loop over the columns.

    Still profits from the single multi-fragment gather; only the per-column
    contribution calls remain at Python level.
    """

    name = "generic-block"

    def __init__(self, metric: Metric) -> None:
        self._metric = metric

    def contribution_block(
        self, values: np.ndarray, query_values: np.ndarray, dimensions: np.ndarray
    ) -> np.ndarray:
        # Custom metrics receive Python floats and arbitrary expressions; a
        # narrow column must be widened *here* or NEP 50 would keep the whole
        # contribution in the store dtype (see the module docstring).
        values = np.asarray(values, dtype=np.float64)
        block = np.empty_like(values, dtype=np.float64)
        for position in range(values.shape[1]):
            block[:, position] = self._metric.contributions(
                values[:, position],
                float(query_values[position]),
                dimension=int(dimensions[position]),
            )
        return block


def kernel_for(metric: Metric) -> BlockKernel:
    """The fused kernel matching a metric (generic fallback for custom ones)."""
    if isinstance(metric, WeightedSquaredEuclidean):
        return WeightedSquaredEuclideanKernel(metric.weights)
    if isinstance(metric, HistogramIntersection):
        return HistogramIntersectionKernel()
    # EuclideanSimilarity delegates its contributions to the squared distance.
    if isinstance(metric, (SquaredEuclidean, EuclideanSimilarity)):
        return SquaredEuclideanKernel()
    return GenericBlockKernel(metric)


def accumulate_columns(target: np.ndarray, block: np.ndarray) -> None:
    """Fold a contribution block into ``target`` column by column, in order.

    Floating-point addition is not associative, so a blocked sum (`.sum(axis=1)`)
    would round differently from the per-dimension loop it replaces.  Adding
    the columns left to right reproduces the loop's addition sequence exactly,
    keeping fused partial scores bitwise identical to the seed path.
    """
    if block.ndim != 2 or block.shape[0] != target.shape[0]:
        raise MetricError(
            f"contribution block of shape {block.shape} is not aligned with "
            f"accumulator of length {target.shape[0]}"
        )
    for position in range(block.shape[1]):
        target += block[:, position]
