"""Fused block-scan kernels for the BOND hot path.

The seed searcher paid Python-interpreter overhead *per dimension*: one
fragment fetch, one ``contributions`` call and one ``accumulate`` per
fragment.  The kernels in this package amortise that overhead over a whole
pruning period: a single ``(candidates, m)`` gather from the store feeds one
vectorised per-metric kernel that produces all ``m`` contribution columns at
once, and the columns are folded into the partial scores in processing order
— which keeps the accumulated floating-point values *bitwise identical* to
the per-dimension loop while eliminating almost all of its interpreter cost.
"""

from repro.kernels.block import (
    BlockKernel,
    GenericBlockKernel,
    HistogramIntersectionKernel,
    SquaredEuclideanKernel,
    WeightedSquaredEuclideanKernel,
    accumulate_columns,
    kernel_for,
)

__all__ = [
    "BlockKernel",
    "GenericBlockKernel",
    "HistogramIntersectionKernel",
    "SquaredEuclideanKernel",
    "WeightedSquaredEuclideanKernel",
    "accumulate_columns",
    "kernel_for",
]
