"""Fused block-scan kernels for the BOND hot path.

The seed searcher paid Python-interpreter overhead *per dimension*: one
fragment fetch, one ``contributions`` call and one ``accumulate`` per
fragment.  The kernels in this package amortise that overhead over a whole
pruning period: a single ``(candidates, m)`` gather from the store feeds one
vectorised per-metric kernel that produces all ``m`` contribution columns at
once, and the columns are folded into the partial scores in processing order
— which keeps the accumulated floating-point values *bitwise identical* to
the per-dimension loop while eliminating almost all of its interpreter cost.

:mod:`repro.kernels.interval` applies the same treatment to the compressed
filter-and-refine path: interval kernels consume 8-bit code columns directly,
dequantise them in a reusable workspace and accumulate (lower, upper) partial
scores per pruning period.
"""

from repro.kernels.block import (
    BlockKernel,
    GenericBlockKernel,
    HistogramIntersectionKernel,
    SquaredEuclideanKernel,
    WeightedSquaredEuclideanKernel,
    accumulate_columns,
    kernel_for,
)
from repro.kernels.interval import (
    GenericIntervalKernel,
    HistogramIntersectionIntervalKernel,
    IntervalBlockKernel,
    IntervalWorkspace,
    SquaredEuclideanIntervalKernel,
    WeightedSquaredEuclideanIntervalKernel,
    dequantize_bounds,
    interval_kernel_for,
)

__all__ = [
    "BlockKernel",
    "GenericBlockKernel",
    "GenericIntervalKernel",
    "HistogramIntersectionIntervalKernel",
    "HistogramIntersectionKernel",
    "IntervalBlockKernel",
    "IntervalWorkspace",
    "SquaredEuclideanIntervalKernel",
    "SquaredEuclideanKernel",
    "WeightedSquaredEuclideanIntervalKernel",
    "WeightedSquaredEuclideanKernel",
    "accumulate_columns",
    "dequantize_bounds",
    "interval_kernel_for",
    "kernel_for",
]
