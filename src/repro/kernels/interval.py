"""Per-metric fused *interval* block kernels over 8-bit compressed fragments.

The filter phase of filter-and-refine search (Section 7.4) accumulates
interval partial scores — a lower and an upper bound per candidate — from
quantised dimension fragments.  The seed implementation paid one Python-level
fragment fetch, one full-array dequantisation and one
:func:`~repro.core.compressed.contribution_interval` call *per dimension*.
The kernels here amortise that over a whole pruning period: the period's m
code columns arrive in one storage call, each column is dequantised into a
reusable :class:`IntervalWorkspace` (no fresh allocations on the hot path)
and the per-dimension (lower, upper) contribution columns are folded into the
two score accumulators left to right.

Bitwise equivalence contract
----------------------------
Every kernel must accumulate, for column ``j``, exactly the float64 values
that the reference per-dimension sequence

.. code-block:: python

    lower_values, upper_values = fragment.value_bounds()          # dequantise
    low, up = contribution_interval(metric, lower_values, upper_values, q_j)
    score_lower += low
    score_upper += up

would accumulate — same operations, same operand order — so fused filter runs
are bit-for-bit identical to the seed loop.  Dequantising *sliced* codes is
bitwise identical to slicing dequantised full columns because every involved
operation is elementwise.  ``tests/test_compressed_fused.py`` enforces the
contract with ``np.array_equal``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanSimilarity, SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean


class IntervalWorkspace:
    """Reusable scratch buffers for interval kernels.

    One workspace per searcher: the buffers are lazily grown to the largest
    candidate count seen and handed out as views, so a whole search (and every
    search after it) dequantises and combines columns without allocating.
    """

    def __init__(self) -> None:
        self._lower = np.empty(0, dtype=np.float64)
        self._upper = np.empty(0, dtype=np.float64)
        self._scratch = np.empty(0, dtype=np.float64)
        self._inside = np.empty(0, dtype=bool)
        self._inside_scratch = np.empty(0, dtype=bool)
        self._lower_rows = np.empty((0, 0), dtype=np.float64)
        self._upper_rows = np.empty((0, 0), dtype=np.float64)
        self._scratch_rows = np.empty((0, 0), dtype=np.float64)
        self._inside_rows = np.empty((0, 0), dtype=bool)
        self._inside_scratch_rows = np.empty((0, 0), dtype=bool)

    def resize(self, count: int) -> None:
        """Ensure every 1-D buffer can hold ``count`` values."""
        if self._lower.shape[0] < count:
            self._lower = np.empty(count, dtype=np.float64)
            self._upper = np.empty(count, dtype=np.float64)
            self._scratch = np.empty(count, dtype=np.float64)
            self._inside = np.empty(count, dtype=bool)
            self._inside_scratch = np.empty(count, dtype=bool)

    def value_buffers(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) float64 views of length ``count``."""
        self.resize(count)
        return self._lower[:count], self._upper[:count]

    def scratch(self, count: int) -> np.ndarray:
        """A float64 scratch view of length ``count``."""
        self.resize(count)
        return self._scratch[:count]

    def bool_buffers(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Two boolean views of length ``count``."""
        self.resize(count)
        return self._inside[:count], self._inside_scratch[:count]

    def resize_rows(self, rows: int, count: int) -> None:
        """Ensure every 2-D buffer can hold a ``(rows, count)`` block."""
        if self._lower_rows.shape[0] < rows or self._lower_rows.shape[1] < count:
            shape = (
                max(rows, self._lower_rows.shape[0]),
                max(count, self._lower_rows.shape[1]),
            )
            self._lower_rows = np.empty(shape, dtype=np.float64)
            self._upper_rows = np.empty(shape, dtype=np.float64)
            self._scratch_rows = np.empty(shape, dtype=np.float64)
            self._inside_rows = np.empty(shape, dtype=bool)
            self._inside_scratch_rows = np.empty(shape, dtype=bool)

    def value_rows(self, rows: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) float64 views of shape ``(rows, count)``."""
        self.resize_rows(rows, count)
        return (
            self._lower_rows[:rows, :count],
            self._upper_rows[:rows, :count],
        )

    def scratch_rows(self, rows: int, count: int) -> np.ndarray:
        """A float64 scratch view of shape ``(rows, count)``."""
        self.resize_rows(rows, count)
        return self._scratch_rows[:rows, :count]

    def bool_rows(self, rows: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Two boolean views of shape ``(rows, count)``."""
        self.resize_rows(rows, count)
        return (
            self._inside_rows[:rows, :count],
            self._inside_scratch_rows[:rows, :count],
        )


def dequantize_bounds(
    codes: np.ndarray,
    minimum: float,
    cell_width: float,
    lower_out: np.ndarray,
    upper_out: np.ndarray,
) -> None:
    """Turn one column of quantisation codes into per-value (lower, upper) bounds.

    Reproduces ``CompressedFragment.value_bounds()`` bit for bit —
    ``approx = minimum + codes * cell_width`` then ``approx ∓ cell_width/2`` —
    with every intermediate landing in the caller-provided output buffers.
    """
    half = cell_width / 2.0
    np.multiply(codes, cell_width, out=lower_out)
    np.add(lower_out, minimum, out=lower_out)          # lower_out = approx
    np.add(lower_out, half, out=upper_out)             # approx + half
    np.subtract(lower_out, half, out=lower_out)        # approx - half


def dequantize_bounds_rows(
    code_rows: np.ndarray,
    minimums: np.ndarray,
    cell_widths: np.ndarray,
    lower_out: np.ndarray,
    upper_out: np.ndarray,
) -> None:
    """Row-block variant of :func:`dequantize_bounds`.

    ``code_rows`` holds one dimension's candidate codes per *row* (shape
    ``(m, n)``), so a handful of broadcast operations dequantise the whole
    pruning period at once.  Every operation is elementwise with the same
    per-element operands as the per-column path, so the bounds are bitwise
    identical.
    """
    halves = cell_widths / 2.0
    np.multiply(code_rows, cell_widths[:, None], out=lower_out)
    np.add(lower_out, minimums[:, None], out=lower_out)   # lower_out = approx
    np.add(lower_out, halves[:, None], out=upper_out)     # approx + half
    np.subtract(lower_out, halves[:, None], out=lower_out)  # approx - half


class IntervalBlockKernel(abc.ABC):
    """Accumulates one pruning period of interval contributions in one call."""

    #: Name used in reports and benchmark output.
    name: str = "interval-kernel"

    @abc.abstractmethod
    def accumulate_block(
        self,
        code_columns: "list[np.ndarray]",
        minimums: np.ndarray,
        cell_widths: np.ndarray,
        query_values: np.ndarray,
        dimensions: np.ndarray,
        score_lower: np.ndarray,
        score_upper: np.ndarray,
        workspace: IntervalWorkspace,
    ) -> None:
        """Fold a block of compressed columns into the interval accumulators.

        Parameters
        ----------
        code_columns:
            The m quantisation-code columns of the block, already restricted
            to the surviving candidates (full fragments while every vector is
            alive).  Left untouched — dequantisation lands in the workspace.
        minimums / cell_widths:
            Per-column quantisation grids (length m, aligned with the block).
        query_values:
            The query's coefficients of the block's dimensions (length m).
        dimensions:
            Original dimension indices (length m); weighted kernels use them
            to select weights, the others ignore them.
        score_lower / score_upper:
            The interval partial-score accumulators, updated in place column
            by column, left to right.
        workspace:
            Reusable scratch buffers (see :class:`IntervalWorkspace`).
        """

    def accumulate_row_block(
        self,
        code_rows: np.ndarray,
        minimums: np.ndarray,
        cell_widths: np.ndarray,
        query_values: np.ndarray,
        dimensions: np.ndarray,
        score_lower: np.ndarray,
        score_upper: np.ndarray,
        workspace: IntervalWorkspace,
    ) -> None:
        """Fold a gathered ``(m, n)`` code block into the interval accumulators.

        The candidate-restricted fast path: once the survivor list is small,
        the period's codes arrive as one row-major block (row ``j`` holding
        dimension ``dimensions[j]``'s codes for every candidate) and a few
        broadcast expressions process all m dimensions at once instead of m
        per-column round trips.  Accumulation stays row by row, left to
        right, so the partial scores remain bitwise identical to the
        per-dimension loop.

        The default implementation loops over the rows via
        :meth:`accumulate_block`; concrete kernels override it with true
        broadcast expressions.
        """
        for position in range(code_rows.shape[0]):
            self.accumulate_block(
                [code_rows[position]],
                minimums[position : position + 1],
                cell_widths[position : position + 1],
                query_values[position : position + 1],
                dimensions[position : position + 1],
                score_lower,
                score_upper,
                workspace,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class HistogramIntersectionIntervalKernel(IntervalBlockKernel):
    """Fused interval ``min(h, q)`` — monotone, so the interval maps directly."""

    name = "histogram-interval"

    def accumulate_block(
        self,
        code_columns,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        count = score_lower.shape[0]
        value_lower, value_upper = workspace.value_buffers(count)
        for position, codes in enumerate(code_columns):
            dequantize_bounds(
                codes,
                float(minimums[position]),
                float(cell_widths[position]),
                value_lower,
                value_upper,
            )
            query_value = float(query_values[position])
            np.minimum(value_lower, query_value, out=value_lower)
            np.minimum(value_upper, query_value, out=value_upper)
            score_lower += value_lower
            score_upper += value_upper

    def accumulate_row_block(
        self,
        code_rows,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        rows, count = code_rows.shape
        value_lower, value_upper = workspace.value_rows(rows, count)
        dequantize_bounds_rows(code_rows, minimums, cell_widths, value_lower, value_upper)
        np.minimum(value_lower, query_values[:, None], out=value_lower)
        np.minimum(value_upper, query_values[:, None], out=value_upper)
        for position in range(rows):
            score_lower += value_lower[position]
            score_upper += value_upper[position]


class SquaredEuclideanIntervalKernel(IntervalBlockKernel):
    """Fused interval ``(v - q)^2`` — zero when the query lies inside the cell."""

    name = "euclidean-interval"

    def accumulate_block(
        self,
        code_columns,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        count = score_lower.shape[0]
        value_lower, value_upper = workspace.value_buffers(count)
        combined = workspace.scratch(count)
        inside, inside_scratch = workspace.bool_buffers(count)
        for position, codes in enumerate(code_columns):
            dequantize_bounds(
                codes,
                float(minimums[position]),
                float(cell_widths[position]),
                value_lower,
                value_upper,
            )
            query_value = float(query_values[position])
            # inside = (lower <= q) & (q <= upper), before the buffers are
            # squared in place.
            np.less_equal(value_lower, query_value, out=inside)
            np.greater_equal(value_upper, query_value, out=inside_scratch)
            np.logical_and(inside, inside_scratch, out=inside)
            # value buffers become the contributions at the interval endpoints.
            np.subtract(value_lower, query_value, out=value_lower)
            np.multiply(value_lower, value_lower, out=value_lower)
            np.subtract(value_upper, query_value, out=value_upper)
            np.multiply(value_upper, value_upper, out=value_upper)
            np.maximum(value_lower, value_upper, out=combined)
            score_upper += combined
            np.minimum(value_lower, value_upper, out=combined)
            combined[inside] = 0.0
            score_lower += combined

    def accumulate_row_block(
        self,
        code_rows,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        rows, count = code_rows.shape
        value_lower, value_upper = workspace.value_rows(rows, count)
        combined = workspace.scratch_rows(rows, count)
        inside, inside_scratch = workspace.bool_rows(rows, count)
        dequantize_bounds_rows(code_rows, minimums, cell_widths, value_lower, value_upper)
        query_column = query_values[:, None]
        np.less_equal(value_lower, query_column, out=inside)
        np.greater_equal(value_upper, query_column, out=inside_scratch)
        np.logical_and(inside, inside_scratch, out=inside)
        np.subtract(value_lower, query_column, out=value_lower)
        np.multiply(value_lower, value_lower, out=value_lower)
        np.subtract(value_upper, query_column, out=value_upper)
        np.multiply(value_upper, value_upper, out=value_upper)
        np.maximum(value_lower, value_upper, out=combined)
        for position in range(rows):
            score_upper += combined[position]
        np.minimum(value_lower, value_upper, out=combined)
        combined[inside] = 0.0
        for position in range(rows):
            score_lower += combined[position]


class WeightedSquaredEuclideanIntervalKernel(IntervalBlockKernel):
    """Fused interval ``w (v - q)^2``, multiplying as ``(w * d) * d``.

    The multiplication order matches the scalar metric — ``w * d == d * w``
    bitwise (IEEE multiplication commutes) — so the endpoint contributions
    round identically to the per-dimension path.
    """

    name = "weighted-euclidean-interval"

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64)

    def accumulate_block(
        self,
        code_columns,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        count = score_lower.shape[0]
        value_lower, value_upper = workspace.value_buffers(count)
        combined = workspace.scratch(count)
        inside, inside_scratch = workspace.bool_buffers(count)
        for position, codes in enumerate(code_columns):
            dequantize_bounds(
                codes,
                float(minimums[position]),
                float(cell_widths[position]),
                value_lower,
                value_upper,
            )
            query_value = float(query_values[position])
            weight = float(self._weights[int(dimensions[position])])
            np.less_equal(value_lower, query_value, out=inside)
            np.greater_equal(value_upper, query_value, out=inside_scratch)
            np.logical_and(inside, inside_scratch, out=inside)
            # (w * d) * d at both endpoints; `combined` briefly holds w * d.
            np.subtract(value_lower, query_value, out=value_lower)
            np.multiply(value_lower, weight, out=combined)
            np.multiply(combined, value_lower, out=value_lower)
            np.subtract(value_upper, query_value, out=value_upper)
            np.multiply(value_upper, weight, out=combined)
            np.multiply(combined, value_upper, out=value_upper)
            np.maximum(value_lower, value_upper, out=combined)
            score_upper += combined
            np.minimum(value_lower, value_upper, out=combined)
            combined[inside] = 0.0
            score_lower += combined

    def accumulate_row_block(
        self,
        code_rows,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        rows, count = code_rows.shape
        value_lower, value_upper = workspace.value_rows(rows, count)
        combined = workspace.scratch_rows(rows, count)
        inside, inside_scratch = workspace.bool_rows(rows, count)
        dequantize_bounds_rows(code_rows, minimums, cell_widths, value_lower, value_upper)
        query_column = query_values[:, None]
        weight_column = self._weights[dimensions][:, None]
        np.less_equal(value_lower, query_column, out=inside)
        np.greater_equal(value_upper, query_column, out=inside_scratch)
        np.logical_and(inside, inside_scratch, out=inside)
        # (w * d) * d at both endpoints; `combined` briefly holds w * d.
        np.subtract(value_lower, query_column, out=value_lower)
        np.multiply(value_lower, weight_column, out=combined)
        np.multiply(combined, value_lower, out=value_lower)
        np.subtract(value_upper, query_column, out=value_upper)
        np.multiply(value_upper, weight_column, out=combined)
        np.multiply(combined, value_upper, out=value_upper)
        np.maximum(value_lower, value_upper, out=combined)
        for position in range(rows):
            score_upper += combined[position]
        np.minimum(value_lower, value_upper, out=combined)
        combined[inside] = 0.0
        for position in range(rows):
            score_lower += combined[position]


class GenericIntervalKernel(IntervalBlockKernel):
    """Fallback for metrics without a fused interval kernel.

    Dequantises each column into the workspace and delegates to
    :func:`~repro.core.compressed.contribution_interval` — still one storage
    call per block, only the per-column contribution math stays generic.
    """

    name = "generic-interval"

    def __init__(self, metric: Metric) -> None:
        self._metric = metric

    def accumulate_block(
        self,
        code_columns,
        minimums,
        cell_widths,
        query_values,
        dimensions,
        score_lower,
        score_upper,
        workspace,
    ):
        from repro.core.compressed import contribution_interval

        count = score_lower.shape[0]
        value_lower, value_upper = workspace.value_buffers(count)
        for position, codes in enumerate(code_columns):
            dequantize_bounds(
                codes,
                float(minimums[position]),
                float(cell_widths[position]),
                value_lower,
                value_upper,
            )
            contribution_lower, contribution_upper = contribution_interval(
                self._metric,
                value_lower,
                value_upper,
                float(query_values[position]),
                dimension=int(dimensions[position]),
            )
            score_lower += contribution_lower
            score_upper += contribution_upper


def provably_zero_dimensions(
    metric: Metric,
    minimums: np.ndarray,
    maximums: np.ndarray,
    cell_widths: np.ndarray,
    query: np.ndarray,
) -> np.ndarray:
    """Dimensions whose interval contribution is exactly zero for **every**
    candidate, decidable from the quantisation grid and the query alone.

    This is the query-side early-out of the compressed filter: a dimension in
    the mask adds ``0.0`` to both the lower and the upper accumulator of every
    candidate, so the engines may skip its fetch, dequantisation and
    accumulation entirely without changing a single accumulated float.  The
    conditions are deliberately conservative (sufficient, not necessary):

    * **histogram intersection** — the query coefficient is 0 and even the
      lowest dequantised bound is non-negative (``minimum - cell/2 >= 0``),
      so ``min(v, 0) == 0`` for every representable value;
    * **(weighted) squared Euclidean** — the dimension is constant
      (``cell width == 0``) and equals the query coefficient, so both interval
      endpoints sit on the query and ``(v - q)^2 == 0``; for the weighted
      metric a zero weight also qualifies (``w (v - q)^2 == 0``), though
      zero-weight dimensions are normally dropped from the processing order
      before they reach a kernel.

    Metrics without a provable condition get an all-false mask.
    """
    minimums = np.asarray(minimums, dtype=np.float64)
    cell_widths = np.asarray(cell_widths, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if isinstance(metric, HistogramIntersection):
        return (query == 0.0) & (minimums - cell_widths / 2.0 >= 0.0)
    if isinstance(metric, WeightedSquaredEuclidean):
        constant_on_query = (cell_widths == 0.0) & (minimums == query)
        return constant_on_query | (metric.weights == 0.0)
    if isinstance(metric, (SquaredEuclidean, EuclideanSimilarity)):
        return (cell_widths == 0.0) & (minimums == query)
    return np.zeros(query.shape[0], dtype=bool)


def interval_kernel_for(metric: Metric) -> IntervalBlockKernel:
    """The fused interval kernel matching a metric (generic fallback otherwise)."""
    if isinstance(metric, WeightedSquaredEuclidean):
        return WeightedSquaredEuclideanIntervalKernel(metric.weights)
    if isinstance(metric, HistogramIntersection):
        return HistogramIntersectionIntervalKernel()
    # EuclideanSimilarity delegates its contributions to the squared distance.
    if isinstance(metric, (SquaredEuclidean, EuclideanSimilarity)):
        return SquaredEuclideanIntervalKernel()
    return GenericIntervalKernel(metric)
