"""Dataset statistics (the Figure 2 reproduction).

Figure 2 of the paper shows two plots for the Corel HSV histograms: the mean
value of every bin across the collection (upper plot) and the average
per-histogram value distribution when each histogram's values are sorted in
decreasing order (lower plot) — the latter is the Zipfian shape that makes
decreasing-q dimension ordering effective.

:func:`describe_dataset` computes both series plus a few scalar summaries
(skewness of the sorted-value curve, Gini coefficient of the average
histogram mass) that the experiment harness prints alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass
class DatasetStatistics:
    """Summary statistics of a vector collection.

    Attributes
    ----------
    per_dimension_mean:
        Mean value of every dimension across the collection (Figure 2, top).
    sorted_value_profile:
        Average of the per-vector values after sorting each vector's values in
        decreasing order (Figure 2, bottom).
    gini_coefficient:
        Gini coefficient of the average sorted profile; 0 means perfectly
        uniform vectors, values close to 1 mean extremely skewed vectors.
    top_decile_mass_fraction:
        Fraction of a vector's total mass carried, on average, by its top 10 %
        of dimensions.
    cardinality / dimensionality:
        Shape of the collection.
    """

    per_dimension_mean: np.ndarray
    sorted_value_profile: np.ndarray
    gini_coefficient: float
    top_decile_mass_fraction: float
    cardinality: int
    dimensionality: int

    def summary_rows(self) -> list[tuple[str, float]]:
        """Scalar rows for a printed report."""
        return [
            ("cardinality", float(self.cardinality)),
            ("dimensionality", float(self.dimensionality)),
            ("mean of per-dimension means", float(self.per_dimension_mean.mean())),
            ("max per-dimension mean", float(self.per_dimension_mean.max())),
            ("gini coefficient (sorted profile)", self.gini_coefficient),
            ("top-10% dimensions' mass fraction", self.top_decile_mass_fraction),
        ]


def describe_dataset(vectors: np.ndarray) -> DatasetStatistics:
    """Compute the Figure 2 statistics for a collection of vectors."""
    matrix = np.asarray(vectors, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise DatasetError("describe_dataset expects a non-empty 2-D matrix")

    per_dimension_mean = matrix.mean(axis=0)
    sorted_values = np.sort(matrix, axis=1)[:, ::-1]
    sorted_value_profile = sorted_values.mean(axis=0)

    gini = _gini_coefficient(sorted_value_profile)
    dimensionality = matrix.shape[1]
    top_decile = max(1, dimensionality // 10)
    row_totals = matrix.sum(axis=1)
    # Guard against all-zero rows (possible for arbitrary user data).
    safe_totals = np.where(row_totals > 0, row_totals, 1.0)
    top_mass = sorted_values[:, :top_decile].sum(axis=1) / safe_totals

    return DatasetStatistics(
        per_dimension_mean=per_dimension_mean,
        sorted_value_profile=sorted_value_profile,
        gini_coefficient=float(gini),
        top_decile_mass_fraction=float(top_mass.mean()),
        cardinality=matrix.shape[0],
        dimensionality=dimensionality,
    )


def _gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative value profile (0 = uniform)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.sum() == 0:
        return 0.0
    count = values.shape[0]
    ranks = np.arange(1, count + 1, dtype=np.float64)
    return float((2.0 * np.sum(ranks * values) / (count * values.sum())) - (count + 1.0) / count)
