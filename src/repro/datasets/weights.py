"""Query-weight generators for weighted and subspace search (Section 8.1).

Figure 11 evaluates weighted k-NN with increasingly skewed weight vectors and
finds that pruning only improves substantially once roughly 10 % of the
dimensions carry more than 90 % of the total weight.  The generator here
produces weight vectors with a controllable "heavy fraction / heavy mass"
split so that sweep can be reproduced, plus the all-or-nothing weights of
subspace queries.

By convention (Definition 3) weights are scaled so they sum to the
dimensionality N, which keeps the similarity normalisation of Equation 3
intact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def make_skewed_weights(
    dimensionality: int,
    *,
    heavy_fraction: float = 0.1,
    heavy_mass: float = 0.9,
    seed: int = 5,
    normalize_to_dimensionality: bool = True,
) -> np.ndarray:
    """Weights where a ``heavy_fraction`` of dimensions holds ``heavy_mass`` of the total.

    ``heavy_fraction=0.1, heavy_mass=0.9`` reproduces the "10 % of the
    dimensions get more than 90 % of the weights" setting the paper identifies
    as the point where weighted pruning becomes effective.  ``heavy_mass``
    equal to ``heavy_fraction`` yields (in expectation) uniform weights.
    """
    if dimensionality <= 0:
        raise DatasetError("dimensionality must be positive")
    if not (0.0 < heavy_fraction <= 1.0):
        raise DatasetError("heavy_fraction must be in (0, 1]")
    if not (0.0 < heavy_mass <= 1.0):
        raise DatasetError("heavy_mass must be in (0, 1]")
    if heavy_mass < heavy_fraction:
        raise DatasetError("heavy_mass below heavy_fraction would invert the skew; swap the parameters")

    rng = np.random.default_rng(seed)
    num_heavy = max(1, int(round(dimensionality * heavy_fraction)))
    heavy_dimensions = rng.choice(dimensionality, size=num_heavy, replace=False)

    weights = np.empty(dimensionality, dtype=np.float64)
    light_mass = 1.0 - heavy_mass
    num_light = dimensionality - num_heavy

    # Mild jitter keeps individual weights distinct without changing the split.
    heavy_values = rng.uniform(0.8, 1.2, size=num_heavy)
    weights_heavy = heavy_values / heavy_values.sum() * heavy_mass
    if num_light > 0:
        light_values = rng.uniform(0.8, 1.2, size=num_light)
        weights_light = light_values / light_values.sum() * light_mass
    else:
        weights_heavy = weights_heavy / weights_heavy.sum()
        weights_light = np.empty(0)

    weights[heavy_dimensions] = weights_heavy
    light_dimensions = np.setdiff1d(np.arange(dimensionality), heavy_dimensions, assume_unique=False)
    weights[light_dimensions] = weights_light

    if normalize_to_dimensionality:
        weights = weights * (dimensionality / weights.sum())
    return weights


def make_subspace_weights(dimensionality: int, dimensions: np.ndarray | list[int]) -> np.ndarray:
    """Zero/one weights selecting a dimensional subspace (Section 8.1).

    The selected dimensions get equal positive weight (scaled to sum to the
    dimensionality), all other dimensions get zero — the paper's reading of
    subspace search as a special case of weighted search.
    """
    dimension_array = np.asarray(dimensions, dtype=np.int64)
    if dimension_array.ndim != 1 or len(dimension_array) == 0:
        raise DatasetError("a subspace needs at least one dimension")
    if dimension_array.min() < 0 or dimension_array.max() >= dimensionality:
        raise DatasetError("subspace dimension outside the collection dimensionality")
    weights = np.zeros(dimensionality, dtype=np.float64)
    weights[dimension_array] = dimensionality / len(dimension_array)
    return weights


def weight_skew_sweep(dimensionality: int, *, seed: int = 5) -> dict[str, np.ndarray]:
    """The weight configurations swept in Figure 11.

    Returns a mapping from a human-readable label to a weight vector, ordered
    from uniform to extremely skewed.
    """
    return {
        "uniform": np.ones(dimensionality, dtype=np.float64),
        "25%-of-weight-on-10%": make_skewed_weights(
            dimensionality, heavy_fraction=0.10, heavy_mass=0.25, seed=seed
        ),
        "50%-of-weight-on-10%": make_skewed_weights(
            dimensionality, heavy_fraction=0.10, heavy_mass=0.50, seed=seed
        ),
        "75%-of-weight-on-10%": make_skewed_weights(
            dimensionality, heavy_fraction=0.10, heavy_mass=0.75, seed=seed
        ),
        "90%-of-weight-on-10%": make_skewed_weights(
            dimensionality, heavy_fraction=0.10, heavy_mass=0.90, seed=seed
        ),
        "97%-of-weight-on-5%": make_skewed_weights(
            dimensionality, heavy_fraction=0.05, heavy_mass=0.97, seed=seed
        ),
    }
