"""Clustered synthetic collections (Section 7.5).

The paper's synthetic datasets contain 100,000 vectors of dimensionality 128
in the unit hypercube.  1,000 points serve as cluster centres; 95 % of the
vectors belong to a random cluster, displaced from its centre by a Gaussian,
and 5 % are uniform noise.  The coordinates of the cluster centres follow a
Zipfian distribution controlled by a skew parameter theta: theta = 0 places
the centres uniformly, larger theta concentrates them near the origin of each
axis.  These collections have the property that makes nearest-neighbour
search meaningful (Beyer et al.): points inside a cluster have close
neighbours, the noise points do not.

Figure 10 sweeps theta to show that BOND's pruning depends on data skew;
Section 8.2 uses two such collections (64- and 128-dimensional) as the two
feature sets of the multi-feature experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class ClusteredConfig:
    """Parameters of the clustered synthetic generator.

    Attributes
    ----------
    cardinality:
        Number of vectors (the paper uses 100,000).
    dimensionality:
        Number of dimensions (the paper uses 128, plus 64 in Section 8.2).
    num_clusters:
        Number of cluster centres (the paper uses 1,000).
    skew:
        Zipf-style skew parameter theta of the centre coordinates; 0 means
        uniform centres.
    cluster_fraction:
        Fraction of vectors assigned to clusters (the paper uses 0.95).
    cluster_stddev:
        Standard deviation of the Gaussian displacement around a centre.
    seed:
        Random seed.
    """

    cardinality: int = 20_000
    dimensionality: int = 128
    num_clusters: int = 1_000
    skew: float = 1.0
    cluster_fraction: float = 0.95
    cluster_stddev: float = 0.025
    seed: int = 11

    def validate(self) -> None:
        """Raise :class:`DatasetError` on invalid parameter combinations."""
        if self.cardinality <= 0:
            raise DatasetError("cardinality must be positive")
        if self.dimensionality <= 1:
            raise DatasetError("dimensionality must be at least 2")
        if self.num_clusters <= 0:
            raise DatasetError("num_clusters must be positive")
        if not (0.0 <= self.cluster_fraction <= 1.0):
            raise DatasetError("cluster_fraction must be in [0, 1]")
        if self.cluster_stddev < 0.0:
            raise DatasetError("cluster_stddev must be non-negative")
        if self.skew < 0.0:
            raise DatasetError("skew must be non-negative")


def _zipfian_coordinates(rng: np.random.Generator, shape: tuple[int, int], skew: float) -> np.ndarray:
    """Coordinates in [0, 1] whose distribution is Zipf-skewed towards 0.

    With ``skew == 0`` the coordinates are uniform.  Larger skew pushes the
    probability mass towards small values, which is the shape the paper uses
    for the cluster-centre coordinates (a power-law transform of a uniform
    variate: ``u ** (1 + skew)`` concentrates near 0 while staying in the unit
    interval).
    """
    uniform = rng.random(shape)
    if skew == 0.0:
        return uniform
    return uniform ** (1.0 + skew)


@dataclass(frozen=True)
class ClusteredCollection:
    """A clustered collection together with its generating ground truth.

    Attributes
    ----------
    vectors:
        The ``cardinality x dimensionality`` float64 matrix, shuffled so OID
        order does not encode cluster membership.
    labels:
        Per-row generating cluster index, aligned with ``vectors`` (i.e.
        post-shuffle); noise rows carry ``-1``.  These are *generator*
        labels — an approximate index builds its own partitioning and never
        sees them; they exist so experiments can ask "was the miss a noise
        point?" without re-deriving membership.
    centres:
        The ``num_clusters x dimensionality`` cluster-centre matrix.
    config:
        The generator parameters that produced the collection.
    """

    vectors: np.ndarray
    labels: np.ndarray
    centres: np.ndarray
    config: ClusteredConfig

    def exact_topk(self, queries: np.ndarray, k: int, metric=None) -> list["SearchResult"]:
        """Brute-force ground-truth top-k for one query or a batch.

        Defaults to squared Euclidean distance (the metric the approximate
        tier serves); results use the repo-wide deterministic tie-break, so
        they are directly comparable OID-for-OID with any exact searcher.
        """
        from repro.metrics.euclidean import SquaredEuclidean
        from repro.workload.ground_truth import exact_top_k

        if metric is None:
            metric = SquaredEuclidean()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [exact_top_k(self.vectors, query, k, metric) for query in queries]


def make_clustered_collection(
    config: ClusteredConfig | None = None, **overrides
) -> ClusteredCollection:
    """Generate a clustered collection *with* its generating labels.

    Same distribution and seeding as :func:`make_clustered` — for any config,
    ``make_clustered(config)`` equals ``make_clustered_collection(config).vectors``
    bitwise.
    """
    if config is None:
        config = ClusteredConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")
    config.validate()

    rng = np.random.default_rng(config.seed)
    centres = _zipfian_coordinates(rng, (config.num_clusters, config.dimensionality), config.skew)

    num_clustered = int(round(config.cardinality * config.cluster_fraction))
    num_noise = config.cardinality - num_clustered

    assignments = rng.integers(0, config.num_clusters, size=num_clustered)
    displacements = rng.normal(0.0, config.cluster_stddev, size=(num_clustered, config.dimensionality))
    clustered = np.clip(centres[assignments] + displacements, 0.0, 1.0)

    noise = rng.random((num_noise, config.dimensionality))
    vectors = np.concatenate([clustered, noise], axis=0)
    labels = np.concatenate(
        [assignments.astype(np.int64), np.full(num_noise, -1, dtype=np.int64)]
    )

    # Shuffle so cluster members and noise are interleaved (OID order must
    # not encode cluster membership, otherwise pruning curves would be
    # artificially smooth).
    permutation = rng.permutation(config.cardinality)
    return ClusteredCollection(
        vectors=vectors[permutation],
        labels=labels[permutation],
        centres=centres,
        config=config,
    )


def make_clustered(config: ClusteredConfig | None = None, **overrides) -> np.ndarray:
    """Generate a clustered synthetic collection in the unit hypercube.

    Returns a ``cardinality x dimensionality`` float64 matrix with every value
    in [0, 1].  :func:`make_clustered_collection` returns the same matrix
    together with the generating cluster labels.
    """
    return make_clustered_collection(config, **overrides).vectors


def make_multifeature_collections(
    cardinality: int = 20_000,
    *,
    dimensionalities: tuple[int, int] = (64, 128),
    skew: float = 1.0,
    seed: int = 23,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the two feature collections of the Section 8.2 experiment.

    Both collections describe the same objects (same OID space) but live in
    different feature spaces — e.g. colour and texture.  They are generated
    with different seeds so the features are not trivially correlated.
    """
    if len(dimensionalities) != 2:
        raise DatasetError("the multi-feature experiment uses exactly two collections")
    first = make_clustered(
        ClusteredConfig(cardinality=cardinality, dimensionality=dimensionalities[0], skew=skew, seed=seed)
    )
    second = make_clustered(
        ClusteredConfig(cardinality=cardinality, dimensionality=dimensionalities[1], skew=skew, seed=seed + 1)
    )
    return first, second
