"""Corel-like colour-histogram generator.

The real dataset of Section 7.1 consists of 59,619 HSV colour histograms with
166 bins (18 hues x 3 saturations x 3 values + 4 grays), L1-normalised to sum
to one.  Figure 2 documents the two statistics that drive BOND's behaviour:

* taken per histogram and sorted decreasingly, the values follow a Zipfian
  distribution — a few bins carry most of the mass;
* the *identity* of the heavy bins differs between images, but not uniformly:
  some bins are on average heavier than others (the upper plot of Figure 2).

The generator reproduces both properties.  Every synthetic image draws a
handful of "dominant colour" bins from a global, mildly skewed bin-popularity
distribution, assigns them Zipfian-decaying masses, adds a small amount of
background mass spread over random bins, and normalises.  Dimensionality is a
parameter so the 26/52/166/260-dimensional variants of Figure 8 can be
generated the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

#: The dimensionalities used in Figure 8 of the paper.
PAPER_DIMENSIONALITIES = (26, 52, 166, 260)
#: Default dimensionality of the Corel HSV histograms.
COREL_DIMENSIONALITY = 166
#: Cardinality of the original Corel collection.
COREL_CARDINALITY = 59_619


@dataclass(frozen=True)
class CorelLikeConfig:
    """Parameters of the Corel-like histogram generator.

    Attributes
    ----------
    cardinality:
        Number of histograms to generate.
    dimensionality:
        Number of histogram bins.
    dominant_bins:
        How many bins receive the bulk of each histogram's mass.
    zipf_exponent:
        Decay exponent of the per-histogram Zipfian mass distribution; the
        Corel histograms in Figure 2 decay roughly like rank^-1.4.
    background_mass:
        Fraction of the total mass spread thinly over random background bins.
    bin_popularity_skew:
        Skew of the global bin-popularity distribution (how strongly some
        bins are preferred as dominant bins across the collection).
    seed:
        Seed of the random generator; identical configurations are
        reproducible.
    """

    cardinality: int = 8_000
    dimensionality: int = COREL_DIMENSIONALITY
    dominant_bins: int = 12
    zipf_exponent: float = 1.4
    background_mass: float = 0.12
    bin_popularity_skew: float = 0.8
    seed: int = 42

    def validate(self) -> None:
        """Raise :class:`DatasetError` on invalid parameter combinations."""
        if self.cardinality <= 0:
            raise DatasetError("cardinality must be positive")
        if self.dimensionality <= 1:
            raise DatasetError("dimensionality must be at least 2")
        if not (0 < self.dominant_bins <= self.dimensionality):
            raise DatasetError("dominant_bins must be in 1..dimensionality")
        if not (0.0 <= self.background_mass < 1.0):
            raise DatasetError("background_mass must be in [0, 1)")
        if self.zipf_exponent <= 0.0:
            raise DatasetError("zipf_exponent must be positive")
        if self.bin_popularity_skew < 0.0:
            raise DatasetError("bin_popularity_skew must be non-negative")


def make_corel_like(config: CorelLikeConfig | None = None, **overrides) -> np.ndarray:
    """Generate a Corel-like collection of L1-normalised histograms.

    Parameters may be given either as a :class:`CorelLikeConfig` or as keyword
    overrides of the default configuration, e.g.
    ``make_corel_like(cardinality=20_000, dimensionality=52)``.

    Returns
    -------
    A ``cardinality x dimensionality`` float64 matrix whose rows are
    non-negative and sum to one.
    """
    if config is None:
        config = CorelLikeConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")
    config.validate()

    rng = np.random.default_rng(config.seed)
    cardinality = config.cardinality
    dimensionality = config.dimensionality
    dominant = config.dominant_bins

    # Global bin popularity: a smooth, mildly skewed preference over bins
    # (reproduces the non-uniform per-bin means of Figure 2, upper plot).
    popularity = rng.gamma(shape=1.0 + config.bin_popularity_skew, scale=1.0, size=dimensionality)
    popularity = popularity / popularity.sum()

    # Zipfian masses for the dominant bins of every histogram.
    ranks = np.arange(1, dominant + 1, dtype=np.float64)
    zipf_masses = ranks ** (-config.zipf_exponent)
    zipf_masses = zipf_masses / zipf_masses.sum()

    histograms = np.zeros((cardinality, dimensionality), dtype=np.float64)
    foreground_mass = 1.0 - config.background_mass

    # Vectorised choice of dominant bins: for each histogram draw `dominant`
    # distinct bins according to the global popularity.  Gumbel-top-k trick.
    gumbel = rng.gumbel(size=(cardinality, dimensionality))
    keys = np.log(popularity)[None, :] + gumbel
    chosen = np.argpartition(keys, -dominant, axis=1)[:, -dominant:]
    # Random order within the chosen bins so the Zipf rank is not correlated
    # with the bin index.
    shuffle = rng.permuted(chosen, axis=1)

    rows = np.repeat(np.arange(cardinality), dominant)
    jitter = rng.uniform(0.7, 1.3, size=(cardinality, dominant))
    masses = zipf_masses[None, :] * jitter
    masses = masses / masses.sum(axis=1, keepdims=True) * foreground_mass
    histograms[rows, shuffle.ravel()] += masses.ravel()

    if config.background_mass > 0.0:
        background = rng.dirichlet(np.full(dimensionality, 0.3), size=cardinality)
        histograms += config.background_mass * background

    # Normalise exactly (guards against floating-point drift).
    histograms /= histograms.sum(axis=1, keepdims=True)
    return histograms


def make_corel_like_queries(
    collection: np.ndarray, num_queries: int, *, seed: int = 7
) -> np.ndarray:
    """Sample query histograms from the collection (as the paper does).

    Section 7.1 runs "100 queries randomly selected from the collection";
    this helper returns the selected row indices so experiments can both use
    the query vector and, if desired, exclude the exact match.
    """
    if num_queries <= 0:
        raise DatasetError("num_queries must be positive")
    if num_queries > collection.shape[0]:
        raise DatasetError("cannot sample more queries than there are vectors")
    rng = np.random.default_rng(seed)
    return rng.choice(collection.shape[0], size=num_queries, replace=False).astype(np.int64)
