"""Synthetic dataset generators matching the paper's evaluation data.

The paper evaluates on one real and several synthetic collections:

* the **Corel** collection — 59,619 images turned into 166-dimensional HSV
  colour histograms (18 hues x 3 saturations x 3 values + 4 grays), whose
  per-histogram values follow a Zipfian distribution (Figure 2);
* **clustered synthetic** collections (Section 7.5) — 100,000 vectors of
  dimensionality 128 in the unit hypercube, 1,000 cluster centres placed with
  Zipfian-skewed coordinates (skew parameter theta), 95 % of the vectors
  Gaussian around a random centre and 5 % uniform noise;
* **skewed query weights** (Section 8.1 / Figure 11) — weight vectors where a
  small fraction of the dimensions carries most of the total weight.

The real Corel images are not redistributable, so :mod:`repro.datasets.corel`
generates histograms that match the *published statistics* of the collection
(Zipfian per-histogram values, varying heavy bins, L1 normalisation), and
:mod:`repro.datasets.hsv` provides a miniature image -> HSV-histogram
extraction pipeline so the end-to-end path of the motivating application is
exercised too.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.corel import CorelLikeConfig, make_corel_like
from repro.datasets.clustered import (
    ClusteredCollection,
    ClusteredConfig,
    make_clustered,
    make_clustered_collection,
)
from repro.datasets.weights import make_skewed_weights, make_subspace_weights
from repro.datasets.hsv import hsv_histogram, make_synthetic_images, quantize_hsv
from repro.datasets.statistics import DatasetStatistics, describe_dataset

__all__ = [
    "ClusteredCollection",
    "ClusteredConfig",
    "CorelLikeConfig",
    "DatasetStatistics",
    "describe_dataset",
    "hsv_histogram",
    "make_clustered",
    "make_clustered_collection",
    "make_corel_like",
    "make_skewed_weights",
    "make_subspace_weights",
    "make_synthetic_images",
    "quantize_hsv",
]
