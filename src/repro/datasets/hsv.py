"""Miniature image -> HSV colour-histogram extraction pipeline.

The Corel histograms of the paper were built by extracting the HSV values of
every pixel and quantising them into 18 hues x 3 saturations x 3 values plus
4 gray bins = 166 bins (following Smith & Chang), then L1-normalising.

This module implements that extraction path on synthetic images so that the
end-to-end application — raw pixels to histograms to k-NN search — can be
exercised in examples and integration tests without the original collection.
Images are represented as ``height x width x 3`` RGB arrays with values in
[0, 1]; the synthetic renderer paints a handful of soft colour blobs over a
background colour, which yields histograms with the heavy-few-bins shape real
photographs have.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

#: The paper's quantisation grid: 18 hues, 3 saturations, 3 values, 4 grays.
HUE_BINS = 18
SATURATION_BINS = 3
VALUE_BINS = 3
GRAY_BINS = 4
#: Saturation below which a pixel is considered gray (achromatic).
GRAY_SATURATION_THRESHOLD = 0.07

#: Total number of histogram bins: 18 * 3 * 3 + 4 = 166.
TOTAL_BINS = HUE_BINS * SATURATION_BINS * VALUE_BINS + GRAY_BINS


def rgb_to_hsv(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image (values in [0, 1]) to HSV, vectorised.

    Hue is returned in [0, 1) (i.e. degrees / 360), saturation and value in
    [0, 1].
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise DatasetError(f"expected an RGB image of shape (H, W, 3), got {image.shape}")
    red, green, blue = image[..., 0], image[..., 1], image[..., 2]
    maximum = image.max(axis=2)
    minimum = image.min(axis=2)
    chroma = maximum - minimum

    hue = np.zeros_like(maximum)
    nonzero = chroma > 0
    red_is_max = nonzero & (maximum == red)
    green_is_max = nonzero & (maximum == green) & ~red_is_max
    blue_is_max = nonzero & ~red_is_max & ~green_is_max

    hue[red_is_max] = ((green - blue)[red_is_max] / chroma[red_is_max]) % 6.0
    hue[green_is_max] = (blue - red)[green_is_max] / chroma[green_is_max] + 2.0
    hue[blue_is_max] = (red - green)[blue_is_max] / chroma[blue_is_max] + 4.0
    hue = hue / 6.0

    saturation = np.zeros_like(maximum)
    positive = maximum > 0
    saturation[positive] = chroma[positive] / maximum[positive]
    return np.stack([hue, saturation, maximum], axis=2)


def quantize_hsv(hsv: np.ndarray) -> np.ndarray:
    """Quantise an HSV image into per-pixel bin indices of the 166-bin grid.

    Pixels with saturation below :data:`GRAY_SATURATION_THRESHOLD` fall into
    one of the 4 gray bins (split by value); all other pixels are quantised on
    the 18 x 3 x 3 chromatic grid.
    """
    hsv = np.asarray(hsv, dtype=np.float64)
    hue, saturation, value = hsv[..., 0], hsv[..., 1], hsv[..., 2]

    hue_index = np.minimum((hue * HUE_BINS).astype(np.int64), HUE_BINS - 1)
    saturation_index = np.minimum((saturation * SATURATION_BINS).astype(np.int64), SATURATION_BINS - 1)
    value_index = np.minimum((value * VALUE_BINS).astype(np.int64), VALUE_BINS - 1)

    chromatic_bin = (hue_index * SATURATION_BINS + saturation_index) * VALUE_BINS + value_index
    gray_bin = HUE_BINS * SATURATION_BINS * VALUE_BINS + np.minimum(
        (value * GRAY_BINS).astype(np.int64), GRAY_BINS - 1
    )
    return np.where(saturation < GRAY_SATURATION_THRESHOLD, gray_bin, chromatic_bin)


def hsv_histogram(image: np.ndarray) -> np.ndarray:
    """Compute the L1-normalised 166-bin HSV histogram of an RGB image."""
    bins = quantize_hsv(rgb_to_hsv(image))
    histogram = np.bincount(bins.ravel(), minlength=TOTAL_BINS).astype(np.float64)
    total = histogram.sum()
    if total == 0:
        raise DatasetError("cannot build a histogram from an empty image")
    return histogram / total


def make_synthetic_images(
    count: int,
    *,
    size: int = 32,
    blobs: int = 4,
    seed: int = 17,
) -> np.ndarray:
    """Render ``count`` synthetic RGB images of soft colour blobs.

    Each image has a random background colour and ``blobs`` Gaussian colour
    blobs at random positions; the resulting HSV histograms have a few heavy
    bins, mimicking the Zipfian shape of real photograph histograms.
    """
    if count <= 0:
        raise DatasetError("count must be positive")
    if size < 4:
        raise DatasetError("images must be at least 4x4 pixels")
    if blobs < 0:
        raise DatasetError("blobs must be non-negative")

    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    images = np.empty((count, size, size, 3), dtype=np.float64)

    for index in range(count):
        background = rng.random(3)
        image = np.broadcast_to(background, (size, size, 3)).copy()
        for _ in range(blobs):
            centre = rng.uniform(0, size, size=2)
            radius = rng.uniform(size * 0.1, size * 0.4)
            colour = rng.random(3)
            distance_sq = (ys - centre[0]) ** 2 + (xs - centre[1]) ** 2
            alpha = np.exp(-distance_sq / (2.0 * radius * radius))[..., None]
            image = (1.0 - alpha) * image + alpha * colour
        images[index] = np.clip(image, 0.0, 1.0)
    return images


def histograms_from_images(images: np.ndarray) -> np.ndarray:
    """Convert a stack of RGB images into a matrix of HSV histograms."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4 or images.shape[3] != 3:
        raise DatasetError(f"expected a stack of RGB images (n, H, W, 3), got {images.shape}")
    return np.stack([hsv_histogram(image) for image in images], axis=0)
