"""BOND: efficient k-NN search on vertically decomposed data.

A from-scratch reproduction of de Vries, Mamoulis, Nes & Kersten,
"Efficient k-NN Search on Vertically Decomposed Data", ACM SIGMOD 2002.

The package re-exports the user-facing entry points; see README.md for a
quickstart and DESIGN.md for the full system inventory.

Typical usage (the unified facade; see docs/API.md)::

    from repro import Index, Query, make_corel_like

    histograms = make_corel_like(cardinality=10_000, dimensionality=166)
    index = Index.build(histograms)
    result = index.answer(Query(histograms[42], k=10, metric="histogram"))
    print(result.oids, result.scores)

The physical layer stays available for direct use::

    from repro import BondSearcher, DecomposedStore, HistogramIntersection

    searcher = BondSearcher(DecomposedStore(histograms), metric=HistogramIntersection())
    result = searcher.search(histograms[42], k=10)
"""

from repro.api import (
    ApproxParams,
    Capabilities,
    Index,
    Plan,
    Query,
    QueryPlanner,
    Searcher,
)
from repro.approx import ApproxConfig
from repro.baselines import RTreeIndex, SimilarityNetwork, VAFile
from repro.cluster import ClusterCoordinator, ClusterHealth, ClusterStats
from repro.bounds import (
    EqBound,
    EvBound,
    HhBound,
    HqBound,
    PartialState,
    PruningBound,
    WeightedEuclideanBound,
)
from repro.core import (
    BatchSearchResult,
    BondSearcher,
    CompressedBondSearcher,
    DataSkewOrdering,
    DecreasingQueryOrdering,
    FeatureComponent,
    FixedPeriodSchedule,
    GeometricSchedule,
    IncreasingQueryOrdering,
    MultiFeatureBondSearcher,
    PartialAbandonScan,
    RandomOrdering,
    SearchResult,
    SequentialScan,
    StreamMergingSearcher,
    subspace_search,
    weighted_search,
)
from repro.datasets import (
    ClusteredCollection,
    describe_dataset,
    make_clustered,
    make_clustered_collection,
    make_corel_like,
    make_skewed_weights,
    make_subspace_weights,
)
from repro.engine import CostModel
from repro.errors import (
    BackendError,
    CorruptFragmentError,
    DeadlineExceeded,
    FailoverExhausted,
    ManifestVersionError,
    PlanError,
    QueryError,
    QueueFull,
    ReproError,
    ServiceClosed,
    ServingError,
    StorageError,
    TransientBackendError,
)
from repro.reliability import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    RetryBudget,
    RetryPolicy,
    fault_point,
)
from repro.metrics import (
    AverageAggregate,
    EuclideanSimilarity,
    FuzzyMaxAggregate,
    FuzzyMinAggregate,
    HistogramIntersection,
    SquaredEuclidean,
    WeightedAverageAggregate,
    WeightedSquaredEuclidean,
)
from repro.serving import (
    FifoAdmission,
    OverlapAdmission,
    SearchService,
    ServiceHealth,
    ServingConfig,
    ServingStats,
)
from repro.storage import (
    CompressedStore,
    DecomposedStore,
    RowStore,
    load_decomposed,
    save_decomposed,
)
from repro.workload import (
    ArrivalSchedule,
    QueryWorkload,
    burst_arrivals,
    exact_top_k,
    poisson_arrivals,
    sample_queries,
)

__version__ = "1.0.0"

__all__ = [
    "ApproxConfig",
    "ApproxParams",
    "ArrivalSchedule",
    "AverageAggregate",
    "BackendError",
    "BatchSearchResult",
    "burst_arrivals",
    "BondSearcher",
    "Capabilities",
    "CircuitBreaker",
    "ClusterCoordinator",
    "ClusterHealth",
    "ClusterStats",
    "ClusteredCollection",
    "CorruptFragmentError",
    "CompressedBondSearcher",
    "CompressedStore",
    "CostModel",
    "DataSkewOrdering",
    "DecomposedStore",
    "DeadlineExceeded",
    "DecreasingQueryOrdering",
    "describe_dataset",
    "EqBound",
    "EuclideanSimilarity",
    "EvBound",
    "exact_top_k",
    "FailoverExhausted",
    "fault_point",
    "FaultPlan",
    "FaultSpec",
    "FeatureComponent",
    "FifoAdmission",
    "FixedPeriodSchedule",
    "FuzzyMaxAggregate",
    "FuzzyMinAggregate",
    "GeometricSchedule",
    "HhBound",
    "HistogramIntersection",
    "HqBound",
    "IncreasingQueryOrdering",
    "Index",
    "load_decomposed",
    "ManifestVersionError",
    "make_clustered",
    "make_clustered_collection",
    "make_corel_like",
    "make_skewed_weights",
    "make_subspace_weights",
    "MultiFeatureBondSearcher",
    "OverlapAdmission",
    "PartialAbandonScan",
    "PartialState",
    "Plan",
    "PlanError",
    "poisson_arrivals",
    "PruningBound",
    "Query",
    "QueryError",
    "QueryPlanner",
    "QueryWorkload",
    "QueueFull",
    "RandomOrdering",
    "ReproError",
    "RetryBudget",
    "RetryPolicy",
    "RowStore",
    "RTreeIndex",
    "sample_queries",
    "save_decomposed",
    "Searcher",
    "SearchResult",
    "SearchService",
    "SequentialScan",
    "ServiceClosed",
    "ServiceHealth",
    "ServingConfig",
    "ServingError",
    "ServingStats",
    "SimilarityNetwork",
    "SquaredEuclidean",
    "StorageError",
    "StreamMergingSearcher",
    "subspace_search",
    "TransientBackendError",
    "VAFile",
    "weighted_search",
    "WeightedAverageAggregate",
    "WeightedEuclideanBound",
    "WeightedSquaredEuclidean",
    "__version__",
]
