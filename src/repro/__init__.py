"""BOND: efficient k-NN search on vertically decomposed data.

A from-scratch reproduction of de Vries, Mamoulis, Nes & Kersten,
"Efficient k-NN Search on Vertically Decomposed Data", ACM SIGMOD 2002.

The package re-exports the user-facing entry points; see README.md for a
quickstart and DESIGN.md for the full system inventory.

Typical usage::

    import numpy as np
    from repro import DecomposedStore, BondSearcher, HistogramIntersection, make_corel_like

    histograms = make_corel_like(cardinality=10_000, dimensionality=166)
    store = DecomposedStore(histograms)
    searcher = BondSearcher(store, HistogramIntersection())
    result = searcher.search(histograms[42], k=10)
    print(result.oids, result.scores)
"""

from repro.baselines import RTreeIndex, SimilarityNetwork, VAFile
from repro.bounds import (
    EqBound,
    EvBound,
    HhBound,
    HqBound,
    PartialState,
    PruningBound,
    WeightedEuclideanBound,
)
from repro.core import (
    BatchSearchResult,
    BondSearcher,
    CompressedBondSearcher,
    DataSkewOrdering,
    DecreasingQueryOrdering,
    FeatureComponent,
    FixedPeriodSchedule,
    GeometricSchedule,
    IncreasingQueryOrdering,
    MultiFeatureBondSearcher,
    PartialAbandonScan,
    RandomOrdering,
    SearchResult,
    SequentialScan,
    StreamMergingSearcher,
    subspace_search,
    weighted_search,
)
from repro.datasets import (
    describe_dataset,
    make_clustered,
    make_corel_like,
    make_skewed_weights,
    make_subspace_weights,
)
from repro.engine import CostModel
from repro.errors import ReproError
from repro.metrics import (
    AverageAggregate,
    EuclideanSimilarity,
    FuzzyMaxAggregate,
    FuzzyMinAggregate,
    HistogramIntersection,
    SquaredEuclidean,
    WeightedAverageAggregate,
    WeightedSquaredEuclidean,
)
from repro.storage import (
    CompressedStore,
    DecomposedStore,
    RowStore,
    load_decomposed,
    save_decomposed,
)
from repro.workload import QueryWorkload, exact_top_k, sample_queries

__version__ = "1.0.0"

__all__ = [
    "AverageAggregate",
    "BatchSearchResult",
    "BondSearcher",
    "CompressedBondSearcher",
    "CompressedStore",
    "CostModel",
    "DataSkewOrdering",
    "DecomposedStore",
    "DecreasingQueryOrdering",
    "EqBound",
    "EuclideanSimilarity",
    "EvBound",
    "FeatureComponent",
    "FixedPeriodSchedule",
    "FuzzyMaxAggregate",
    "FuzzyMinAggregate",
    "GeometricSchedule",
    "HhBound",
    "HistogramIntersection",
    "HqBound",
    "IncreasingQueryOrdering",
    "MultiFeatureBondSearcher",
    "PartialAbandonScan",
    "PartialState",
    "PruningBound",
    "QueryWorkload",
    "RTreeIndex",
    "RandomOrdering",
    "ReproError",
    "RowStore",
    "SearchResult",
    "SequentialScan",
    "SimilarityNetwork",
    "SquaredEuclidean",
    "StreamMergingSearcher",
    "VAFile",
    "WeightedAverageAggregate",
    "WeightedEuclideanBound",
    "WeightedSquaredEuclidean",
    "describe_dataset",
    "exact_top_k",
    "load_decomposed",
    "make_clustered",
    "make_corel_like",
    "make_skewed_weights",
    "make_subspace_weights",
    "sample_queries",
    "save_decomposed",
    "subspace_search",
    "weighted_search",
    "__version__",
]
