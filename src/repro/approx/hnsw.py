"""Hierarchical navigable small-world graph (the SNIPPETS.md explainer).

A multi-layer proximity graph: every node lives on layer 0, and each node's
top layer is a geometric draw so higher layers form sparser and sparser
"express lanes".  Search greedily descends the upper layers towards the
query, then runs a best-first beam of width ``ef_search`` on layer 0; larger
beams trade speed for recall.

Determinism contract:

* the level of OID ``v`` is drawn from ``random.Random(f"{seed}:{v}")`` — a
  private stream per node, so a build replays bit for bit regardless of how
  the surrounding code consumes randomness;
* nodes are inserted in ascending OID order, every candidate ordering uses
  the total order ``(distance, oid)``, and neighbour trimming keeps the
  lexicographically smallest ``(distance, oid)`` pairs — no iteration-order
  or hash dependence anywhere;
* ``ef_search >= cardinality`` abandons the graph walk for a full scored
  scan (the graph cannot promise reaching every node once trimming has cut
  edges), which makes the exhaustive configuration OID-identical to the
  exact tier by construction and flags ``exact=True``.

The graph serialises as flat adjacency arrays (per-layer CSR over the full
OID space) so the manifest sidecar files are plain little-endian arrays like
every fragment file, and reopening an index restores the graph lazily.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from dataclasses import dataclass

import numpy as np

from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel, DOUBLE_BYTES
from repro.errors import QueryError
from repro.metrics.base import Metric

#: Upper bound on any node's layer; ``random.random()`` can't produce a draw
#: above ~25 for m >= 4 (the geometric tail dies at 53 bits of entropy), so
#: the cap only guards degenerate tiny-m configurations.
MAX_LEVEL_CAP = 48


def node_level(seed: int, oid: int, m: int) -> int:
    """The layer draw of one OID: ``floor(-ln(U) / ln(m))`` per-node stream."""
    draw = random.Random(f"{seed}:{oid}").random()
    if draw <= 0.0:
        return MAX_LEVEL_CAP
    return min(MAX_LEVEL_CAP, int(-math.log(draw) / math.log(m)))


def effective_ef_search(
    ef_search: int | None,
    target_recall: float | None,
    *,
    k: int,
    cardinality: int,
    default: int,
) -> int:
    """Resolve the query knobs to a concrete beam width (always >= ``k``).

    An explicit ``ef_search`` wins.  A ``target_recall`` of 1.0 forces the
    exhaustive configuration; lower floors widen the beam hyperbolically in
    the target (``~ 4k * r / (1 - r)``) — monotone and conservative, since
    the contract is a floor.  With neither knob the build default applies.
    """
    if ef_search is not None:
        return max(int(ef_search), k)
    if target_recall is not None:
        if target_recall >= 1.0:
            return cardinality
        scaled = math.ceil(4.0 * k * target_recall / (1.0 - target_recall))
        return max(k, min(cardinality, scaled))
    return max(default, k)


@dataclass
class HNSWGraph:
    """The built graph: per-layer CSR adjacency over the full OID space.

    Attributes
    ----------
    m / ef_construction / seed:
        The build knobs (persisted; answers depend on them only through the
        edges they produced).
    entry_point:
        Node the descent starts from (a node on the top layer).
    levels:
        ``(cardinality,)`` int32 top layer per node.
    indptr:
        ``(num_layers, cardinality + 1)`` int64 CSR row pointers; layer ``l``
        of node ``v`` owns ``neighbors[l][indptr[l, v]:indptr[l, v + 1]]``.
    neighbors:
        One int32 edge array per layer, layer 0 first.
    """

    m: int
    ef_construction: int
    seed: int
    entry_point: int
    levels: np.ndarray
    indptr: np.ndarray
    neighbors: tuple[np.ndarray, ...]

    @property
    def cardinality(self) -> int:
        """Number of nodes (every OID lives on layer 0)."""
        return int(self.levels.shape[0])

    @property
    def max_level(self) -> int:
        """Top layer of the graph."""
        return int(self.indptr.shape[0]) - 1

    @property
    def num_edges(self) -> int:
        """Total directed edge count across all layers."""
        return int(sum(edges.shape[0] for edges in self.neighbors))

    def neighborhood(self, level: int, node: int) -> np.ndarray:
        """The neighbour list of ``node`` on ``level``."""
        row = self.indptr[level]
        return self.neighbors[level][row[node] : row[node + 1]]

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat array payload (persisted as manifest sidecar files)."""
        spans = np.zeros(len(self.neighbors) + 1, dtype=np.int64)
        np.cumsum([edges.shape[0] for edges in self.neighbors], out=spans[1:])
        flat = (
            np.concatenate(self.neighbors)
            if self.num_edges
            else np.empty(0, dtype=np.int32)
        )
        return {
            "levels": self.levels,
            "indptr": self.indptr,
            "neighbors": flat.astype(np.int32),
            "spans": spans,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        m: int,
        ef_construction: int,
        seed: int,
        entry_point: int,
    ) -> "HNSWGraph":
        """Rebuild a graph from its persisted arrays."""
        indptr = np.ascontiguousarray(arrays["indptr"], dtype=np.int64)
        if indptr.ndim == 1:
            indptr = indptr[None, :]
        flat = np.ascontiguousarray(arrays["neighbors"], dtype=np.int32)
        spans = np.ascontiguousarray(arrays["spans"], dtype=np.int64)
        neighbors = tuple(
            flat[spans[level] : spans[level + 1]] for level in range(indptr.shape[0])
        )
        return cls(
            m=int(m),
            ef_construction=int(ef_construction),
            seed=int(seed),
            entry_point=int(entry_point),
            levels=np.ascontiguousarray(arrays["levels"], dtype=np.int32),
            indptr=indptr,
            neighbors=neighbors,
        )


def _search_layer(query, entry, ef, neighbor_fn, distance_fn):
    """Best-first beam of width ``ef`` on one layer.

    ``entry`` is a list of ``(distance, oid)`` pairs.  Returns up to ``ef``
    pairs sorted ascending by ``(distance, oid)`` — a deterministic total
    order, so forced ties cannot reorder results between runs.
    """
    visited = {oid for _, oid in entry}
    candidates = list(entry)
    heapq.heapify(candidates)
    # Max-heap over (distance, oid): the root is the worst kept result, ties
    # evicting the larger OID first (consistent with ascending-OID ranking).
    results = [(-distance, -oid) for distance, oid in entry]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)
    while candidates:
        distance, node = heapq.heappop(candidates)
        if len(results) >= ef and distance > -results[0][0]:
            break
        fresh = [int(nb) for nb in neighbor_fn(node) if int(nb) not in visited]
        if not fresh:
            continue
        visited.update(fresh)
        for nd, nb in zip(distance_fn(fresh).tolist(), fresh):
            slot = (-nd, -nb)
            if len(results) < ef or slot > results[0]:
                heapq.heappush(results, slot)
                heapq.heappush(candidates, (nd, nb))
                if len(results) > ef:
                    heapq.heappop(results)
    return sorted((-negd, -negoid) for negd, negoid in results)


def _select_neighbors(ranked, bound, matrix):
    """The paper's heuristic neighbour selection (its Algorithm 4).

    Walks the ``(distance, oid)``-ranked candidates and keeps one only if it
    is closer to the base point than to every already-kept neighbour —
    naively keeping the ``bound`` closest candidates wires tight clusters
    into isolated cliques with no edges crossing between them, and beam
    search then cannot leave the entry point's cluster (recall collapses on
    exactly the clustered collections this tier targets).  Remaining slots
    backfill from the discarded candidates in rank order, keeping the degree
    (and so search work) predictable.
    """
    selected: list[int] = []
    selected_rows: list[np.ndarray] = []
    discarded: list[int] = []
    for distance, oid in ranked:
        if len(selected) >= bound:
            break
        row = matrix[oid]
        keep = True
        for kept_row in selected_rows:
            delta = row - kept_row
            if float(delta @ delta) < distance:
                keep = False
                break
        if keep:
            selected.append(oid)
            selected_rows.append(row)
        else:
            discarded.append(oid)
    for oid in discarded:
        if len(selected) >= bound:
            break
        selected.append(oid)
    return selected


def build_hnsw_graph(
    matrix: np.ndarray, *, m: int = 8, ef_construction: int = 48, seed: int = 7
) -> HNSWGraph:
    """Build the graph by inserting nodes in ascending OID order."""
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise QueryError("an HNSW graph needs a non-empty 2-D matrix")
    if m < 2:
        raise QueryError(f"m must be at least 2, got {m}")
    if ef_construction < 1:
        raise QueryError(f"ef_construction must be at least 1, got {ef_construction}")
    cardinality = matrix.shape[0]
    levels = np.array(
        [node_level(seed, oid, m) for oid in range(cardinality)], dtype=np.int32
    )

    # Mutable adjacency: one list-of-lists per layer (upper layers hold
    # mostly-empty rows; the CSR freeze below drops the slack).
    adjacency: list[list[list[int]]] = [
        [[] for _ in range(cardinality)] for _ in range(int(levels.max()) + 1)
    ]
    entry_point = 0
    top_level = int(levels[0])

    def distances_from(query, ids):
        rows = matrix[ids]
        deltas = rows - query
        return np.einsum("ij,ij->i", deltas, deltas)

    for oid in range(1, cardinality):
        query = matrix[oid]
        level = int(levels[oid])
        entry_distance = float(distances_from(query, [entry_point])[0])
        beam = [(entry_distance, entry_point)]
        for layer in range(top_level, level, -1):
            beam = _search_layer(
                query,
                beam,
                1,
                lambda node, _l=layer: adjacency[_l][node],
                lambda ids: distances_from(query, ids),
            )
        for layer in range(min(level, top_level), -1, -1):
            beam = _search_layer(
                query,
                beam,
                ef_construction,
                lambda node, _l=layer: adjacency[_l][node],
                lambda ids: distances_from(query, ids),
            )
            degree_bound = 2 * m if layer == 0 else m
            selected = _select_neighbors(beam, m, matrix)
            adjacency[layer][oid] = list(selected)
            for neighbor in selected:
                links = adjacency[layer][neighbor]
                links.append(oid)
                if len(links) > degree_bound:
                    link_distances = distances_from(matrix[neighbor], links)
                    ranked = sorted(zip(link_distances.tolist(), links))
                    adjacency[layer][neighbor] = _select_neighbors(
                        ranked, degree_bound, matrix
                    )
        if level > top_level:
            entry_point = oid
            top_level = level

    indptr = np.zeros((top_level + 1, cardinality + 1), dtype=np.int64)
    neighbors: list[np.ndarray] = []
    for layer in range(top_level + 1):
        degrees = [len(adjacency[layer][node]) for node in range(cardinality)]
        np.cumsum(degrees, out=indptr[layer, 1:])
        flat = [nb for node in range(cardinality) for nb in adjacency[layer][node]]
        neighbors.append(np.asarray(flat, dtype=np.int32))
    return HNSWGraph(
        m=int(m),
        ef_construction=int(ef_construction),
        seed=int(seed),
        entry_point=int(entry_point),
        levels=levels,
        indptr=indptr,
        neighbors=tuple(neighbors),
    )


class HNSWSearcher:
    """Beam search over a built :class:`HNSWGraph`.

    Scores the surfaced candidates with the query's metric (so returned
    scores are bit-compatible with the exact tier's) while navigating the
    graph on its native squared Euclidean distance.  Every distance
    evaluation is charged to the cost model as a random row access — the
    graph's whole point is that it touches few rows, and the accounting
    should show it.
    """

    def __init__(
        self,
        graph: HNSWGraph,
        matrix: np.ndarray,
        *,
        metric: Metric,
        cost: CostModel,
        default_ef_search: int = 32,
    ) -> None:
        if graph.cardinality != matrix.shape[0]:
            raise QueryError(
                f"graph covers {graph.cardinality} rows, the collection holds {matrix.shape[0]}"
            )
        self._graph = graph
        self._matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        self._metric = metric
        self._cost = cost
        self._default_ef_search = default_ef_search

    @property
    def graph(self) -> HNSWGraph:
        """The underlying graph."""
        return self._graph

    def _exhaustive(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, bool]:
        matrix = self._matrix
        self._cost.charge_block_scan(matrix.shape[0], matrix.shape[1], DOUBLE_BYTES)
        self._cost.charge_arithmetic(2 * matrix.size)
        scores = self._metric.score(matrix, self._metric.validate_query(query))
        order = self._metric.best_first(scores)[: min(k, matrix.shape[0])]
        return order.astype(np.int64), scores[order], True

    def _beam(self, query: np.ndarray, k: int, ef: int) -> tuple[np.ndarray, np.ndarray, bool]:
        graph = self._graph
        matrix = self._matrix
        evaluated = 0

        def distances_from(ids):
            nonlocal evaluated
            evaluated += len(ids)
            rows = matrix[ids]
            deltas = rows - query
            return np.einsum("ij,ij->i", deltas, deltas)

        node = graph.entry_point
        beam = [(float(distances_from([node])[0]), node)]
        for layer in range(graph.max_level, 0, -1):
            beam = _search_layer(
                query,
                beam,
                1,
                lambda n, _l=layer: graph.neighborhood(_l, n),
                distances_from,
            )
        beam = _search_layer(
            query,
            beam,
            ef,
            lambda n: graph.neighborhood(0, n),
            distances_from,
        )
        self._cost.charge_random_access(evaluated, matrix.shape[1] * DOUBLE_BYTES)
        self._cost.charge_arithmetic(2 * evaluated * matrix.shape[1])
        candidates = np.asarray([oid for _, oid in beam], dtype=np.int64)
        # Rank the surfaced candidates exactly like the exact tier would:
        # metric scores, ascending-OID pre-sort, metric-order stable ranking.
        candidates = np.sort(candidates)
        scores = self._metric.score(matrix[candidates], self._metric.validate_query(query))
        best = self._metric.best_first(scores)[: min(k, candidates.shape[0])]
        return candidates[best], scores[best], False

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        ef_search: int | None = None,
        target_recall: float | None = None,
        trace=None,
    ) -> SearchResult:
        """Top-k via an ``ef_search``-wide beam (or the exhaustive fallback)."""
        started = time.perf_counter()
        snapshot = self._cost.snapshot()
        query = np.asarray(query, dtype=np.float64)
        ef = effective_ef_search(
            ef_search,
            target_recall,
            k=k,
            cardinality=self._graph.cardinality,
            default=self._default_ef_search,
        )
        if ef >= self._graph.cardinality:
            oids, scores, exact = self._exhaustive(query, k)
        else:
            oids, scores, exact = self._beam(query, k, ef)
        return SearchResult(
            oids=oids,
            scores=scores,
            cost=self._cost.delta_since(snapshot),
            elapsed_seconds=time.perf_counter() - started,
            exact=exact,
        )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        ef_search: int | None = None,
        target_recall: float | None = None,
    ) -> BatchSearchResult:
        """Per-query beams (graph walks don't share reads across queries)."""
        started = time.perf_counter()
        snapshot = self._cost.snapshot()
        queries = np.asarray(queries, dtype=np.float64)
        results = []
        for position in range(queries.shape[0]):
            single = self.search(
                queries[position], k, ef_search=ef_search, target_recall=target_recall
            )
            results.append(
                SearchResult(oids=single.oids, scores=single.scores, exact=single.exact)
            )
        return BatchSearchResult(
            results=results,
            cost=self._cost.delta_since(snapshot),
            elapsed_seconds=time.perf_counter() - started,
        )
