"""Deterministic seeded k-means and the resulting :class:`ClusterPlan`.

The IVF backend generalises the paper's filter-and-refine decomposition from
*dimensions* to *rows*: instead of pruning whole fragments, it prunes whole
partitions.  A :class:`ClusterPlan` is the physical layout that makes this
cheap — a contiguous member remapping (every cluster's rows adjacent, rows
within a cluster in ascending OID order) so each partition is one zero-copy
:meth:`repro.storage.decomposed.DecomposedStore.row_slice` of a permuted
store, answered by the unmodified fused BOND engine.

Determinism: the initial centroids are a seeded no-replacement draw of
distinct rows, Lloyd's runs a *fixed* iteration count (no data-dependent
stopping rule), assignment ties go to the lowest centroid index
(``np.argmin`` semantics) and empty clusters keep their previous centroid.
Same seed + same knobs over the same collection ⇒ bitwise-identical
centroids, permutation and offsets on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError

#: Row-block size of the chunked distance computations: bounds the transient
#: ``block x n_clusters`` distance matrix to a few MiB regardless of scale.
_ASSIGN_BLOCK_ROWS = 8192


def _assign_to_centroids(matrix: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid index per row (squared Euclidean, ties to lowest index)."""
    centroid_norms = np.einsum("kd,kd->k", centroids, centroids)
    assignments = np.empty(matrix.shape[0], dtype=np.int64)
    for start in range(0, matrix.shape[0], _ASSIGN_BLOCK_ROWS):
        block = matrix[start : start + _ASSIGN_BLOCK_ROWS]
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
        # constant per row, so the argmin can skip it.
        distances = centroid_norms[None, :] - 2.0 * (block @ centroids.T)
        assignments[start : start + block.shape[0]] = np.argmin(distances, axis=1)
    return assignments


@dataclass(frozen=True)
class ClusterPlan:
    """The persisted outcome of one seeded k-means build.

    Attributes
    ----------
    centroids:
        ``(n_clusters, dimensionality)`` float64 cluster centres.
    permutation:
        ``(cardinality,)`` int64 contiguous member remapping: permuted row
        ``i`` holds the vector of original OID ``permutation[i]``; rows are
        grouped by cluster (ascending cluster index) and sorted by ascending
        OID within each cluster — the property that keeps partition-local
        tie-breaks identical to the global score-then-OID rule.
    offsets:
        ``(n_clusters + 1,)`` int64 partition boundaries: cluster ``c`` owns
        permuted rows ``[offsets[c], offsets[c + 1])``.
    seed / iterations:
        The build knobs, persisted so a reopened index can state exactly how
        its plan was derived.
    """

    centroids: np.ndarray
    permutation: np.ndarray
    offsets: np.ndarray
    seed: int
    iterations: int

    @property
    def n_clusters(self) -> int:
        """Number of partitions (including possibly empty ones)."""
        return int(self.centroids.shape[0])

    @property
    def cardinality(self) -> int:
        """Number of rows the plan partitions."""
        return int(self.permutation.shape[0])

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the centroids."""
        return int(self.centroids.shape[1])

    def sizes(self) -> np.ndarray:
        """Member count per cluster."""
        return np.diff(self.offsets)

    def nonempty_clusters(self) -> int:
        """How many partitions actually hold rows."""
        return int(np.count_nonzero(self.sizes()))

    def members(self, cluster: int) -> np.ndarray:
        """Original OIDs of one cluster, ascending."""
        return self.permutation[self.offsets[cluster] : self.offsets[cluster + 1]]

    def assignments(self) -> np.ndarray:
        """Cluster index per original OID (derived from the remapping)."""
        result = np.empty(self.cardinality, dtype=np.int64)
        sizes = self.sizes()
        result[self.permutation] = np.repeat(np.arange(self.n_clusters), sizes)
        return result

    def probe_order(self, query: np.ndarray) -> np.ndarray:
        """Non-empty cluster indices by ascending centroid distance.

        Deterministic: distances tie-break on the lower cluster index (the
        stable argsort), and empty partitions are never probed.
        """
        query = np.asarray(query, dtype=np.float64)
        deltas = self.centroids - query[None, :]
        distances = np.einsum("kd,kd->k", deltas, deltas)
        order = np.argsort(distances, kind="stable")
        return order[self.sizes()[order] > 0]

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The plan's array payload (persisted as manifest sidecar files)."""
        return {
            "centroids": self.centroids,
            "permutation": self.permutation,
            "offsets": self.offsets,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray], *, seed: int, iterations: int) -> "ClusterPlan":
        """Rebuild a plan from its persisted arrays."""
        return cls(
            centroids=np.ascontiguousarray(arrays["centroids"], dtype=np.float64),
            permutation=np.ascontiguousarray(arrays["permutation"], dtype=np.int64),
            offsets=np.ascontiguousarray(arrays["offsets"], dtype=np.int64),
            seed=int(seed),
            iterations=int(iterations),
        )


def build_cluster_plan(
    matrix: np.ndarray, *, n_clusters: int, iterations: int = 10, seed: int = 7
) -> ClusterPlan:
    """Seeded Lloyd's k-means over the rows of ``matrix`` (see module docstring)."""
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise QueryError("k-means needs a non-empty 2-D matrix")
    if n_clusters < 1:
        raise QueryError(f"n_clusters must be at least 1, got {n_clusters}")
    if iterations < 1:
        raise QueryError(f"iterations must be at least 1, got {iterations}")
    cardinality = matrix.shape[0]
    n_clusters = min(n_clusters, cardinality)

    rng = np.random.default_rng(seed)
    centroids = matrix[rng.choice(cardinality, size=n_clusters, replace=False)].copy()
    for _ in range(iterations):
        assignments = _assign_to_centroids(matrix, centroids)
        counts = np.bincount(assignments, minlength=n_clusters).astype(np.float64)
        sums = np.zeros_like(centroids)
        # Per-dimension weighted bincount beats np.add.at by an order of
        # magnitude and is just as deterministic (pairwise float summation
        # per bin, fixed order).
        for dim in range(matrix.shape[1]):
            sums[:, dim] = np.bincount(assignments, weights=matrix[:, dim], minlength=n_clusters)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]

    assignments = _assign_to_centroids(matrix, centroids)
    # Stable sort by cluster = clusters ascending, ascending OID within each.
    permutation = np.argsort(assignments, kind="stable")
    sizes = np.bincount(assignments, minlength=n_clusters)
    offsets = np.zeros(n_clusters + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return ClusterPlan(
        centroids=centroids,
        permutation=permutation.astype(np.int64),
        offsets=offsets,
        seed=int(seed),
        iterations=int(iterations),
    )
