"""IVF clustered pruning: scan only the ``nprobe`` nearest partitions.

The searcher is deliberately thin: all heavy machinery is reused unchanged.
The permuted collection is a :class:`~repro.storage.decomposed.DecomposedStore`
assembled with :meth:`~repro.storage.decomposed.DecomposedStore.from_fragments`
(so narrow dtypes and memory-mapped residency survive the remapping), every
partition is a zero-copy
:meth:`~repro.storage.decomposed.DecomposedStore.row_slice` of it, each
partition is answered by the stock fused
:class:`~repro.core.bond.BondSearcher`, all charging flows through the one
shared :class:`~repro.engine.cost.CostModel`, and the per-partition top-k
sets merge with the same deterministic score-then-ascending-OID rule as the
sharded engine (:func:`repro.core.parallel.merge_shard_results`).

Exactness: probing every non-empty partition *is* the exact search — the
partitions tile the collection, per-row scores are partition-independent,
and the merge tie-break equals the global one (cluster members are stored in
ascending OID order) — so ``nprobe >= n_clusters`` returns the exact tier's
answer OID for OID and flags ``exact=True``.  Fewer probes trade recall for
a proportionally smaller scan volume and flag ``exact=False``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.approx.cluster import ClusterPlan
from repro.core.bond import BondSearcher
from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel, DOUBLE_BYTES
from repro.errors import QueryError
from repro.metrics.base import Metric
from repro.storage.decomposed import DecomposedStore


def effective_nprobe(
    nprobe: int | None, target_recall: float | None, *, n_clusters: int, default: int
) -> int:
    """Resolve the query knobs to a concrete probe count.

    An explicit ``nprobe`` wins.  A ``target_recall`` maps conservatively:
    ``1.0`` forces the exhaustive (exact-equivalent) configuration, lower
    floors scale the probe count with the square of the target — monotone in
    the target and deliberately generous, since the contract is a floor, not
    a point estimate.  With neither knob the build-time default applies.
    """
    if nprobe is not None:
        return max(1, min(int(nprobe), n_clusters))
    if target_recall is not None:
        if target_recall >= 1.0:
            return n_clusters
        return max(1, min(n_clusters, math.ceil(n_clusters * target_recall**2)))
    return max(1, min(default, n_clusters))


class IVFPartitions:
    """The metric-independent physical side of the IVF backend.

    Owns the cluster plan, the permuted store and the per-partition slices;
    cached once per :class:`~repro.api.index.Index` and shared by every
    metric's :class:`IVFSearcher`.
    """

    def __init__(
        self,
        store: DecomposedStore,
        plan: ClusterPlan,
        *,
        cost: CostModel,
        name: str = "collection",
    ) -> None:
        if plan.cardinality != store.cardinality:
            raise QueryError(
                f"cluster plan covers {plan.cardinality} rows, the store holds {store.cardinality}"
            )
        self._plan = plan
        self._cost = cost
        permutation = plan.permutation
        # Permute each fragment tail in the store's own dtype; from_fragments
        # re-applies the format (a mapped store spills the permuted tails to
        # a fresh mapping), so formats thread through unchanged.
        tails = [store.fragment_tail(dim)[permutation] for dim in range(store.dimensionality)]
        row_sum_tail = np.asarray(store.materialize_row_sums().tail)[permutation]
        self._permuted = DecomposedStore.from_fragments(
            tails,
            format=store.format,
            cost=cost,
            name=f"{name}.ivf",
            row_sum_tail=row_sum_tail,
        )
        self._slices: dict[int, DecomposedStore] = {}

    @property
    def plan(self) -> ClusterPlan:
        """The cluster plan the partitions realise."""
        return self._plan

    @property
    def permuted_store(self) -> DecomposedStore:
        """The cluster-contiguous remapping of the collection."""
        return self._permuted

    def partition_store(self, cluster: int) -> DecomposedStore:
        """The zero-copy slice holding one (non-empty) cluster's rows."""
        store = self._slices.get(cluster)
        if store is None:
            start = int(self._plan.offsets[cluster])
            stop = int(self._plan.offsets[cluster + 1])
            store = DecomposedStore.row_slice(self._permuted, start, stop, cost=self._cost)
            self._slices[cluster] = store
        return store


class IVFSearcher:
    """Per-metric IVF search over shared :class:`IVFPartitions`."""

    def __init__(
        self,
        partitions: IVFPartitions,
        *,
        metric: Metric,
        default_nprobe: int = 4,
    ) -> None:
        self._partitions = partitions
        self._plan = partitions.plan
        self._metric = metric
        self._default_nprobe = default_nprobe
        self._searchers: dict[int, BondSearcher] = {}
        self._cost = partitions._cost

    @property
    def plan(self) -> ClusterPlan:
        """The cluster plan driving partition selection."""
        return self._plan

    def _partition_searcher(self, cluster: int) -> BondSearcher:
        searcher = self._searchers.get(cluster)
        if searcher is None:
            searcher = BondSearcher(self._partitions.partition_store(cluster), metric=self._metric)
            self._searchers[cluster] = searcher
        return searcher

    def _resolve_nprobe(self, nprobe: int | None, target_recall: float | None) -> int:
        return effective_nprobe(
            nprobe,
            target_recall,
            n_clusters=self._plan.n_clusters,
            default=self._default_nprobe,
        )

    def _charge_centroid_scan(self, batch_size: int) -> None:
        plan = self._plan
        self._cost.charge_block_scan(plan.n_clusters, plan.dimensionality, DOUBLE_BYTES)
        self._cost.charge_arithmetic(2 * plan.n_clusters * plan.dimensionality * batch_size)

    def _merge(self, parts: list[tuple[np.ndarray, np.ndarray]], k: int) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic score-then-ascending-OID merge of partition top-k sets."""
        oids = np.concatenate([part[0] for part in parts])
        scores = np.concatenate([part[1] for part in parts])
        by_oid = np.argsort(oids, kind="stable")
        oids = oids[by_oid]
        scores = scores[by_oid]
        best = self._metric.best_first(scores)[:k]
        self._cost.charge_comparisons(len(oids))
        return oids[best], scores[best]

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        target_recall: float | None = None,
        trace=None,
    ) -> SearchResult:
        """Top-k over the ``nprobe`` partitions nearest to ``query``."""
        started = time.perf_counter()
        snapshot = self._cost.snapshot()
        probes = self._resolve_nprobe(nprobe, target_recall)
        self._charge_centroid_scan(1)
        order = self._plan.probe_order(np.asarray(query, dtype=np.float64))
        probed = order[:probes]
        exact = len(probed) == len(order)
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        dimensions_processed = 0
        full_scan_dimensions = 0
        for cluster in probed:
            cluster = int(cluster)
            start = int(self._plan.offsets[cluster])
            local = self._partition_searcher(cluster).search(query, k)
            parts.append((self._plan.permutation[start + local.oids], local.scores))
            dimensions_processed = max(dimensions_processed, local.dimensions_processed)
            full_scan_dimensions = max(full_scan_dimensions, local.full_scan_dimensions)
        oids, scores = self._merge(parts, k)
        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=dimensions_processed,
            full_scan_dimensions=full_scan_dimensions,
            cost=self._cost.delta_since(snapshot),
            elapsed_seconds=time.perf_counter() - started,
            exact=exact,
        )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        target_recall: float | None = None,
    ) -> BatchSearchResult:
        """Batched variant: queries probing the same partition share its scan."""
        started = time.perf_counter()
        snapshot = self._cost.snapshot()
        queries = np.asarray(queries, dtype=np.float64)
        probes = self._resolve_nprobe(nprobe, target_recall)
        self._charge_centroid_scan(queries.shape[0])
        per_query_parts: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(queries.shape[0])
        ]
        exact = True
        # Group queries by probed partition so each partition runs one fused
        # batch over exactly the queries that selected it.
        by_cluster: dict[int, list[int]] = {}
        for position in range(queries.shape[0]):
            order = self._plan.probe_order(queries[position])
            probed = order[:probes]
            exact = exact and len(probed) == len(order)
            for cluster in probed:
                by_cluster.setdefault(int(cluster), []).append(position)
        for cluster in sorted(by_cluster):
            positions = by_cluster[cluster]
            start = int(self._plan.offsets[cluster])
            batch = self._partition_searcher(cluster).search_batch(queries[positions], k)
            for position, local in zip(positions, batch.results):
                per_query_parts[position].append(
                    (self._plan.permutation[start + local.oids], local.scores)
                )
        results = []
        for parts in per_query_parts:
            oids, scores = self._merge(parts, k)
            results.append(SearchResult(oids=oids, scores=scores, exact=exact))
        return BatchSearchResult(
            results=results,
            cost=self._cost.delta_since(snapshot),
            elapsed_seconds=time.perf_counter() - started,
        )
