"""Build-time configuration of the approximate tier.

One frozen :class:`ApproxConfig` describes everything the two approximate
backends need to *build* their structures — the IVF cluster count, the
k-means iteration budget, the HNSW graph degree and construction beam, and
the single seed both draw from.  The config round-trips through the
persisted manifest, so an index reopened from disk plans and answers with
exactly the knobs it was built with.

The determinism contract of :mod:`repro.approx` starts here: the same config
over the same collection produces bitwise-identical structures on every run
(k-means uses a seeded generator with a fixed iteration count; the HNSW
level draws are keyed per OID off the same seed), which is what makes the
byte-identical-manifest property in ``tests/test_approx.py`` possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.errors import QueryError

#: Default seed of both approximate structures; persisted in the manifest.
DEFAULT_APPROX_SEED = 7


@dataclass(frozen=True)
class ApproxConfig:
    """Knobs of the approximate tier, fixed at build time.

    Attributes
    ----------
    n_clusters:
        Partition count of the IVF backend; ``None`` (default) resolves to
        ``round(sqrt(cardinality))`` clamped to ``[1, 1024]`` — the classic
        inverted-file sizing that balances the centroid scan against the
        partition scans.
    kmeans_iterations:
        Fixed Lloyd iteration count (no convergence test — a data-dependent
        stopping rule would make the structure depend on floating-point
        noise instead of only on seed + knobs).
    m:
        HNSW degree bound: each node keeps at most ``m`` neighbours per
        upper layer and ``2 * m`` on layer 0.
    ef_construction:
        Beam width of the HNSW insertion searches.
    seed:
        Seed of the k-means initialisation and the per-OID HNSW level draws.
    default_nprobe:
        Partitions the IVF backend scans when the query sets no knob.
    default_ef_search:
        Layer-0 beam width of the HNSW backend when the query sets no knob.
    """

    n_clusters: int | None = None
    kmeans_iterations: int = 10
    m: int = 8
    ef_construction: int = 48
    seed: int = DEFAULT_APPROX_SEED
    default_nprobe: int = 4
    default_ef_search: int = 32

    def __post_init__(self) -> None:
        if self.n_clusters is not None and self.n_clusters < 1:
            raise QueryError(f"n_clusters must be at least 1, got {self.n_clusters}")
        if self.kmeans_iterations < 1:
            raise QueryError(f"kmeans_iterations must be at least 1, got {self.kmeans_iterations}")
        if self.m < 2:
            raise QueryError(f"m must be at least 2, got {self.m}")
        if self.ef_construction < 1:
            raise QueryError(f"ef_construction must be at least 1, got {self.ef_construction}")
        if self.default_nprobe < 1:
            raise QueryError(f"default_nprobe must be at least 1, got {self.default_nprobe}")
        if self.default_ef_search < 1:
            raise QueryError(f"default_ef_search must be at least 1, got {self.default_ef_search}")

    @classmethod
    def coerce(cls, value: "ApproxConfig | dict | None") -> "ApproxConfig":
        """An :class:`ApproxConfig` from an instance, a mapping or ``None``."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            known = {field.name for field in fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise QueryError(f"unknown approx config key(s) {unknown}; known: {sorted(known)}")
            return cls(**value)
        raise QueryError(
            f"approx must be an ApproxConfig or a mapping of its fields, got {type(value).__name__}"
        )

    def resolve_n_clusters(self, cardinality: int) -> int:
        """The effective IVF partition count for a collection of this size."""
        if self.n_clusters is not None:
            return min(self.n_clusters, cardinality)
        return max(1, min(1024, int(round(math.sqrt(cardinality))), cardinality))

    def to_manifest(self) -> dict:
        """JSON-ready record persisted under the manifest's ``index`` options."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_manifest(cls, record: dict) -> "ApproxConfig":
        """Rebuild the config from its manifest record."""
        return cls.coerce(dict(record))
