"""The approximate tier: recall traded for speed, deterministically.

Two structures answer ``Query(mode="approx")`` through the planner:

* **IVF clustered pruning** (:mod:`repro.approx.ivf`) — seeded k-means
  partitions the rows (:mod:`repro.approx.cluster`), search scans only the
  ``nprobe`` partitions whose centroids are nearest to the query.  The
  paper's filter-and-refine idea generalised from dimensions to rows, built
  entirely from the existing store machinery (zero-copy row slices, fused
  BOND per partition, shared cost model).
* **HNSW graph search** (:mod:`repro.approx.hnsw`) — a hierarchical
  navigable small-world graph whose ``ef_search`` beam width trades recall
  for distance evaluations.

Both obey the repo-wide determinism contract: same build seed + same knobs
⇒ bitwise-identical structures and answers, and the exhaustive parameter
settings (``nprobe >= n_clusters``; ``ef_search >= cardinality``) return the
exact tier's top-k OID for OID.  Results carry ``exact=False`` whenever the
answer is not guaranteed exact.
"""

from repro.approx.cluster import ClusterPlan, build_cluster_plan
from repro.approx.config import ApproxConfig, DEFAULT_APPROX_SEED
from repro.approx.hnsw import (
    HNSWGraph,
    HNSWSearcher,
    build_hnsw_graph,
    effective_ef_search,
    node_level,
)
from repro.approx.ivf import IVFPartitions, IVFSearcher, effective_nprobe

__all__ = [
    "ApproxConfig",
    "ClusterPlan",
    "DEFAULT_APPROX_SEED",
    "HNSWGraph",
    "HNSWSearcher",
    "IVFPartitions",
    "IVFSearcher",
    "build_cluster_plan",
    "build_hnsw_graph",
    "effective_ef_search",
    "effective_nprobe",
    "node_level",
]
