"""Exact ground truth and result-quality checks."""

from __future__ import annotations

import numpy as np

from repro.core.result import SearchResult
from repro.errors import ExperimentError
from repro.metrics.base import Metric


def exact_top_k(vectors: np.ndarray, query: np.ndarray, k: int, metric: Metric) -> SearchResult:
    """Brute-force exact top-k (used as ground truth in tests and experiments)."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ExperimentError("the collection must be a non-empty 2-D matrix")
    if k <= 0:
        raise ExperimentError("k must be positive")
    k = min(k, vectors.shape[0])
    scores = metric.score(vectors, metric.validate_query(query))
    order = metric.best_first(scores)[:k]
    return SearchResult(oids=order.astype(np.int64), scores=scores[order])


def recall(result: SearchResult, reference: SearchResult) -> float:
    """Set recall of ``result`` against the reference top-k."""
    return result.recall_against(reference)


def result_scores_match(result: SearchResult, reference: SearchResult, *, tolerance: float = 1e-9) -> bool:
    """Whether two results return the same score multiset (tie-robust equality).

    Exact searchers can legitimately break ties differently, so OID equality
    is too strict; equality of the sorted score lists is the right check.
    """
    if result.k != reference.k:
        return False
    return bool(
        np.allclose(np.sort(result.scores), np.sort(reference.scores), atol=tolerance, rtol=0.0)
    )
