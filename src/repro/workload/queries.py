"""Query workload construction.

The paper's experiments run batches of queries "randomly selected from the
collection" (100 of them in most experiments).  :class:`QueryWorkload` bundles
the query vectors with their provenance (the OIDs they were sampled from, if
any) so experiments can report per-query and aggregate figures consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass
class QueryWorkload:
    """A batch of query vectors.

    Attributes
    ----------
    queries:
        ``num_queries x dimensionality`` matrix of query vectors.
    source_oids:
        For queries sampled from the collection, the OID each query came
        from; ``None`` for ad-hoc queries.
    """

    queries: np.ndarray
    source_oids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.queries = np.atleast_2d(np.asarray(self.queries, dtype=np.float64))
        if self.source_oids is not None:
            self.source_oids = np.asarray(self.source_oids, dtype=np.int64)
            if self.source_oids.shape[0] != self.queries.shape[0]:
                raise ExperimentError("source_oids must be aligned with the queries")

    def __len__(self) -> int:
        return int(self.queries.shape[0])

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, item) -> "QueryWorkload | np.ndarray":
        """``workload[i]`` is one query vector; slices and index arrays
        return a sub-workload with its ``source_oids`` kept aligned."""
        if isinstance(item, (int, np.integer)):
            return self.queries[item]
        queries = self.queries[item]
        if queries.ndim != 2 or queries.shape[0] == 0:
            raise ExperimentError("a workload slice must keep at least one query")
        oids = self.source_oids[item] if self.source_oids is not None else None
        return QueryWorkload(queries=queries, source_oids=oids)

    def take(self, num_queries: int) -> "QueryWorkload":
        """The first ``num_queries`` queries as a sub-workload."""
        if num_queries < 1 or num_queries > len(self):
            raise ExperimentError(
                f"take() needs 1 <= num_queries <= {len(self)}, got {num_queries}"
            )
        return self[:num_queries]

    def chunks(self, size: int):
        """Iterate the workload in consecutive sub-workloads of ``size``.

        The last chunk may be smaller; this is how closed-loop drivers feed
        fixed-size batches and serving tests replay a workload wave by wave.
        """
        if size < 1:
            raise ExperimentError("the chunk size must be at least 1")
        for begin in range(0, len(self), size):
            yield self[begin : begin + size]

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the query vectors."""
        return int(self.queries.shape[1])


def sample_queries(
    collection: np.ndarray,
    num_queries: int,
    *,
    seed: int = 7,
    perturb: float = 0.0,
) -> QueryWorkload:
    """Sample a query workload from a collection (with optional perturbation).

    ``perturb`` adds zero-mean uniform noise of the given amplitude and
    re-clips to the data domain, for experiments that want near-miss queries
    rather than exact members (the paper notes that member queries make k=1
    trivially easy).
    """
    collection = np.asarray(collection, dtype=np.float64)
    if collection.ndim != 2 or collection.shape[0] == 0:
        raise ExperimentError("the collection must be a non-empty 2-D matrix")
    if num_queries <= 0:
        raise ExperimentError("num_queries must be positive")
    if num_queries > collection.shape[0]:
        raise ExperimentError("cannot sample more queries than there are vectors")
    if perturb < 0:
        raise ExperimentError("perturb must be non-negative")

    rng = np.random.default_rng(seed)
    oids = rng.choice(collection.shape[0], size=num_queries, replace=False).astype(np.int64)
    queries = collection[oids].copy()
    if perturb > 0:
        queries = queries + rng.uniform(-perturb, perturb, size=queries.shape)
        queries = np.clip(queries, 0.0, 1.0)
        row_sums = collection[oids].sum(axis=1)
        if np.allclose(row_sums, 1.0):
            # Keep histogram queries on the simplex.
            queries = queries / queries.sum(axis=1, keepdims=True)
    return QueryWorkload(queries=queries, source_oids=oids)
