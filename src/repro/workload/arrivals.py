"""Open-loop arrival processes for the serving layer.

Closed-loop drivers (submit, wait, submit the next) can never observe
queueing: the system is only ever asked for one thing at a time.  Serving
behaviour — micro-batch formation, queue waits, admission-control rejections
— only shows under *open-loop* load, where queries arrive on their own clock
regardless of whether earlier ones have finished.  :func:`poisson_arrivals`
generates the canonical open-loop process (exponential interarrival gaps from
a seeded generator), and :class:`ArrivalSchedule` carries the resulting
timeline with the slicing/scaling helpers the benchmark harness needs to
sweep offered load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True, eq=False)
class ArrivalSchedule:
    """A fixed open-loop arrival timeline.

    ``eq=False`` because the payload is an array (a generated ``__eq__``
    would raise on the ambiguous element-wise comparison, exactly like
    :class:`~repro.api.query.Query`); compare ``times`` explicitly.

    Attributes
    ----------
    times:
        Non-decreasing arrival offsets in seconds, relative to the instant
        the driver starts replaying the schedule (``times[i]`` is when query
        ``i`` is submitted).
    """

    times: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise ExperimentError("an arrival schedule needs a non-empty 1-D time array")
        if not np.isfinite(times).all():
            raise ExperimentError("arrival times must be finite")
        if times[0] < 0 or np.any(np.diff(times) < 0):
            raise ExperimentError("arrival times must be non-negative and non-decreasing")
        object.__setattr__(self, "times", times)

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __iter__(self):
        return iter(self.times)

    def __getitem__(self, item) -> "ArrivalSchedule | float":
        """``schedule[i]`` is one offset; slices return a sub-schedule
        re-anchored at its first arrival (so replaying a tail does not start
        with dead time)."""
        if isinstance(item, (int, np.integer)):
            return float(self.times[item])
        sliced = self.times[item]
        if sliced.size == 0:
            raise ExperimentError("an arrival schedule slice must keep at least one arrival")
        return ArrivalSchedule(times=sliced - sliced[0])

    @property
    def duration(self) -> float:
        """Seconds between the first and the last arrival."""
        return float(self.times[-1] - self.times[0])

    @property
    def mean_rate(self) -> float:
        """Average offered load in arrivals per second (``inf`` for a burst)."""
        if len(self) < 2 or self.duration == 0.0:
            return float("inf")
        return (len(self) - 1) / self.duration

    def interarrivals(self) -> np.ndarray:
        """The gaps between consecutive arrivals (length ``len(self) - 1``)."""
        return np.diff(self.times)

    def scaled(self, factor: float) -> "ArrivalSchedule":
        """Stretch (``factor > 1``) or compress (``< 1``) the time axis.

        Compressing a schedule raises the offered load without changing the
        arrival pattern — how the benchmark harness sweeps rate from one
        seeded draw.
        """
        if factor < 0:
            raise ExperimentError("the scale factor must be non-negative")
        return ArrivalSchedule(times=self.times * float(factor))


def poisson_arrivals(
    num_arrivals: int,
    *,
    rate: float,
    seed: int = 0,
    start: float = 0.0,
) -> ArrivalSchedule:
    """A seeded Poisson arrival process (exponential interarrival gaps).

    Parameters
    ----------
    num_arrivals:
        Number of arrivals to generate.
    rate:
        Mean offered load in arrivals per second.
    seed:
        Seed of the ``numpy`` generator — equal seeds replay the exact same
        timeline, which is what makes open-loop serving runs comparable
        across policies.
    start:
        Offset of the first possible arrival (the first gap is drawn from the
        same exponential, so the process is memoryless from ``start``).
    """
    if num_arrivals <= 0:
        raise ExperimentError("num_arrivals must be positive")
    if rate <= 0:
        raise ExperimentError("the arrival rate must be positive")
    if start < 0:
        raise ExperimentError("the start offset must be non-negative")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=num_arrivals)
    return ArrivalSchedule(times=start + np.cumsum(gaps))


def burst_arrivals(num_arrivals: int) -> ArrivalSchedule:
    """Every query arrives at once — the saturated upper bound of open loop."""
    if num_arrivals <= 0:
        raise ExperimentError("num_arrivals must be positive")
    return ArrivalSchedule(times=np.zeros(num_arrivals, dtype=np.float64))
