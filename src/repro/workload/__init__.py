"""Query workloads, arrival processes, ground truth and quality checking."""

from repro.workload.arrivals import ArrivalSchedule, burst_arrivals, poisson_arrivals
from repro.workload.ground_truth import exact_top_k, recall, result_scores_match
from repro.workload.queries import QueryWorkload, sample_queries

__all__ = [
    "ArrivalSchedule",
    "burst_arrivals",
    "exact_top_k",
    "poisson_arrivals",
    "QueryWorkload",
    "recall",
    "result_scores_match",
    "sample_queries",
]
