"""Query workloads, ground truth and quality checking."""

from repro.workload.queries import QueryWorkload, sample_queries
from repro.workload.ground_truth import exact_top_k, recall, result_scores_match

__all__ = [
    "QueryWorkload",
    "exact_top_k",
    "recall",
    "result_scores_match",
    "sample_queries",
]
