"""The :class:`Index` facade: one object that owns the stores and answers
declarative queries.

An :class:`Index` wraps a feature-vector collection and lazily materialises
every physical representation a registered backend might need — the
horizontal :class:`~repro.storage.rowstore.RowStore`, the vertically
decomposed :class:`~repro.storage.decomposed.DecomposedStore`, and the 8-bit
:class:`~repro.storage.compressed.CompressedStore` — against a single shared
cost model.  ``answer(query)`` plans the query with the capability-driven
:class:`~repro.api.planner.QueryPlanner` and executes it on the chosen
backend; ``explain(query)`` shows the decision without executing anything.

Typical usage::

    from repro.api import Index, Query

    index = Index.build(histograms, name="corel")
    result = index.answer(Query(histograms[42], k=10, metric="histogram"))
    print(index.explain(Query(histograms[42], k=10, mode="compressed")))

Facade answers are **bitwise identical** to direct searcher calls: the
backends construct the underlying searchers with exactly the defaults a
direct caller would get and invoke the same ``search`` / ``search_batch``
entry points (the equivalence suite in ``tests/test_api_facade.py`` pins
this for every registered backend and mode).

Live mutability
---------------

``insert(rows)`` / ``delete(oids)`` mutate the collection while it serves:
updates accumulate in an in-memory delta tail
(:class:`~repro.mutability.tail.TailState`, the paper's Section 6.2
differential file) that every ``answer`` overlays exactly on the chosen
backend's base answer — deleted rows filtered, live tail rows scored and
merged through the stack's deterministic score-then-OID tie-break — so an
updated index answers **bitwise identically** to one rebuilt from scratch at
the same logical state.  ``reorganize()`` merges the tail into fresh base
fragments and publishes them as a new epoch with a single atomic reference
swap: in-flight queries pin the epoch they started on, so serving never
stops and never reads a torn state.

When the index is *attached* to a directory (``save`` attaches, ``open``
re-attaches), every update is written to a checksummed write-ahead log and
fsynced **before** it is acknowledged, and ``reorganize()`` commits the
merged fragments as a new manifest generation (temp + fsync + atomic
rename).  ``open`` recovers by loading the newest committed generation and
replaying the WAL suffix beyond the manifest's watermark — a kill at any
instant yields the state as of some acknowledged prefix of updates, never a
torn store and never a wrong answer.  An unattached (purely in-memory)
index supports the same operations without the durability.
"""

from __future__ import annotations

import contextlib
import dataclasses
import pathlib
import threading

import numpy as np

from repro.api.capabilities import BackendRegistry
from repro.api.planner import Plan, QueryPlanner
from repro.api.query import Query
from repro.approx import (
    ApproxConfig,
    ClusterPlan,
    HNSWGraph,
    IVFPartitions,
    build_cluster_plan,
    build_hnsw_graph,
)
from repro.core.parallel import SHARD_EXECUTORS
from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel
from repro.engine.updates import DeltaLog
from repro.errors import BackendError, FailoverExhausted, QueryError, StorageError
from repro.metrics.base import Metric
from repro.mutability.epoch import Epoch
from repro.mutability.overlay import inflated_k, overlay_answer
from repro.mutability.tail import TailState
from repro.mutability.wal import OP_INSERT, WriteAheadLog, read_wal, wal_token
from repro.storage.compressed import CompressedStore
from repro.storage.decomposed import DecomposedStore
from repro.storage.formats import FragmentFormat
from repro.storage.persistence import (
    MANIFEST_NAME,
    approx_sidecar_records,
    load_approx_array,
    load_decomposed,
    load_manifest,
    manifest_mutability,
    next_generation,
    save_decomposed,
)
from repro.storage.rowstore import RowStore
from repro.storage.sharding import ShardPlan

# Importing the backends module registers the built-ins with the default
# registry; the import is for its side effect.
import repro.api.backends  # noqa: F401

#: File name of the write-ahead log inside an attached store directory.
WAL_NAME = "wal.log"


class Index:
    """Facade over one vector collection and every way of searching it.

    Parameters
    ----------
    vectors:
        The ``|X| x N`` matrix of feature vectors.
    name:
        Label used in store names and persisted manifests.
    bits:
        Bits per coefficient of the lazily built compressed representation
        (the paper uses 8).
    cost:
        Shared cost model every store and backend charges; a private model is
        created when omitted, so all work done through one index accumulates
        in one place.
    registry:
        Backend registry to plan against (defaults to the built-ins).
    shards:
        Row-shard count of the parallel ``sharded_bond`` backend (default 1:
        unsharded, so the single-store engines keep winning the plan).  The
        resulting balanced :class:`~repro.storage.sharding.ShardPlan` is
        persisted in the manifest by :meth:`save` and restored by
        :meth:`open`.
    on_shard_failure:
        Shard-failure policy of the sharded engines: ``"fail"`` (default)
        re-raises a failed shard's error, ``"partial"`` merges the surviving
        shards into a flagged degraded answer (see
        :class:`~repro.core.parallel.ShardedBondSearcher`).
    format:
        The :class:`~repro.storage.formats.FragmentFormat` (or its
        ``"float32/mmap"``-style spec) of the physical stores.  The default
        ``float64/ram`` preserves the ingested values bit for bit; narrow
        dtypes quantise once at ingest and every backend then answers over
        the float64-widened quantised collection (see the
        :mod:`repro.storage.formats` contract).  Persisted by :meth:`save`
        and restored by :meth:`open`.
    approx:
        The :class:`~repro.approx.ApproxConfig` (or a mapping of its fields)
        of the approximate tier: IVF cluster count and k-means budget, HNSW
        degree and construction beam, the shared seed, and the default query
        knobs.  The structures themselves build lazily on first
        ``mode="approx"`` use; built structures are persisted by
        :meth:`save` (manifest v4+ sidecar arrays) and reopened lazily by
        :meth:`open`.
    """

    SHARD_FAILURE_MODES = ("fail", "partial")

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        name: str = "collection",
        bits: int = 8,
        cost: CostModel | None = None,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
        shard_executor: str = "thread",
        format: "FragmentFormat | str | None" = None,
        approx: "ApproxConfig | dict | None" = None,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise QueryError(f"an index needs a non-empty 2-D vector matrix, got {matrix.shape}")
        self._setup(
            name=name,
            bits=bits,
            cost=cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            shard_executor=shard_executor,
            format=FragmentFormat.coerce(format),
            approx=approx,
            cardinality=int(matrix.shape[0]),
            dimensionality=int(matrix.shape[1]),
        )
        epoch = self._epoch
        epoch.input = matrix
        # The logical (format-quantised, float64-widened) collection; for the
        # identity format it IS the ingested matrix, narrow formats derive it
        # lazily in the `vectors` property.
        epoch.vectors = matrix if self._format.is_identity else None

    def _setup(
        self,
        *,
        name: str,
        bits: int,
        cost: CostModel | None,
        registry: BackendRegistry | None,
        shards: int,
        on_shard_failure: str,
        format: "FragmentFormat",
        cardinality: int,
        dimensionality: int,
        approx: "ApproxConfig | dict | None" = None,
        shard_executor: str = "thread",
    ) -> None:
        """Option validation + shared state; matrix-independent, so the
        :meth:`open` path can run it without materialising the collection."""
        if shards < 1:
            raise QueryError("shards must be at least 1")
        if on_shard_failure not in self.SHARD_FAILURE_MODES:
            raise QueryError(
                f"on_shard_failure must be one of {self.SHARD_FAILURE_MODES}, "
                f"got {on_shard_failure!r}"
            )
        if shard_executor not in SHARD_EXECUTORS:
            raise QueryError(
                f"shard_executor must be one of {SHARD_EXECUTORS}, "
                f"got {shard_executor!r}"
            )
        self._name = name
        self._bits = bits
        self._on_shard_failure = on_shard_failure
        self._shard_executor = shard_executor
        self._shards = int(shards)
        self._format = format
        self._dimensionality = dimensionality
        self._approx_config = ApproxConfig.coerce(approx)
        self._cost = cost if cost is not None else CostModel()
        self._planner = QueryPlanner(self, registry=registry)
        # Metric instances are stateless, so the cache survives epoch swaps.
        self._metrics: dict[tuple, Metric] = {}
        # -- mutability state ------------------------------------------------
        # All reads go through the current epoch (atomically swapped);
        # mutations serialise on the mutation lock; queries never take it.
        self._epoch = self._fresh_epoch(generation=0, base_cardinality=cardinality)
        self._tls = threading.local()
        self._mutation_lock = threading.RLock()
        # Attachment: set by save()/open(); None means purely in-memory.
        self._home: pathlib.Path | None = None
        self._wal: WriteAheadLog | None = None

    def _fresh_epoch(self, *, generation: int, base_cardinality: int) -> Epoch:
        return Epoch(
            generation=generation,
            base_cardinality=base_cardinality,
            dimensionality=self._dimensionality,
            tail=TailState.empty(
                base_cardinality=base_cardinality,
                dimensionality=self._dimensionality,
                format=self._format,
                cost=self._cost,
                name=f"{self._name}-tail",
            ),
            delta=DeltaLog(self._dimensionality),
        )

    @classmethod
    def _from_store(
        cls,
        store: DecomposedStore,
        *,
        name: str,
        bits: int = 8,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
        shard_executor: str = "thread",
        approx: "ApproxConfig | dict | None" = None,
    ) -> "Index":
        """An index over an already-constructed decomposed store.

        The :meth:`open` path: the loaded (possibly memory-mapped) fragments
        become the index's decomposed store directly, and nothing
        materialises the row-major matrix — which is what lets an index
        larger than RAM open and answer queries.
        """
        index = object.__new__(cls)
        index._setup(
            name=name,
            bits=bits,
            cost=store.cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            shard_executor=shard_executor,
            format=store.format,
            approx=approx,
            cardinality=store.cardinality,
            dimensionality=store.dimensionality,
        )
        index._epoch.decomposed = store
        return index

    # -- epoch pinning -------------------------------------------------------------

    def _current_epoch(self) -> Epoch:
        """The epoch this thread should read: its pinned one, else the live one."""
        pinned = getattr(self._tls, "epoch", None)
        return pinned if pinned is not None else self._epoch

    @contextlib.contextmanager
    def pin(self):
        """Pin the current epoch for the duration of the block.

        Everything the block reads through the index — stores, shard plan,
        tail, searcher cache — comes from one consistent epoch even if a
        concurrent ``reorganize()`` publishes the next generation mid-block.
        Pins nest (the inner pin reuses the outer epoch), and the answer
        path takes no locks: pinning is one thread-local assignment and a
        refcount touch.
        """
        existing = getattr(self._tls, "epoch", None)
        if existing is not None:
            yield existing
            return
        epoch = self._epoch
        epoch.acquire()
        self._tls.epoch = epoch
        try:
            yield epoch
        finally:
            self._tls.epoch = None
            epoch.release()

    # -- construction / persistence ----------------------------------------------

    @classmethod
    def build(cls, vectors: np.ndarray, **opts) -> "Index":
        """Build an index over an in-memory collection (see ``__init__``)."""
        return cls(vectors, **opts)

    @classmethod
    def open(cls, path: str | pathlib.Path, *, verify: str = "none", **opts) -> "Index":
        """Open a collection persisted by :meth:`save`.

        Build options recorded in the manifest (name, compression bits,
        shard-failure policy, fragment format) are restored; explicit keyword
        arguments override them — in particular ``format="float64/mmap"``
        reopens the persisted fragments as read-only memory maps, so the
        index comes up without reading a coefficient and a collection larger
        than RAM pages fragments in as queries touch them.
        ``verify="checksum"`` re-hashes every fragment file against the
        manifest's recorded checksums while loading and raises
        :class:`~repro.errors.CorruptFragmentError` (naming the fragment) on
        any mismatch; for memory-mapped targets the files are verified by
        streaming in chunks, never by faulting the mapping in — see
        :func:`~repro.storage.persistence.load_decomposed`.

        **Recovery.** The newest *committed* manifest generation is loaded
        (an interrupted save or reorganisation can never publish a torn one
        — the manifest rename is the commit point), and any write-ahead-log
        records beyond the manifest's LSN watermark are replayed into the
        delta tail, restoring exactly the acknowledged updates.  A WAL left
        behind by a superseded manifest lineage (crash between a
        reorganisation's commit and its log reset) is recognised by its
        lineage token and ignored — its records are already inside the
        committed fragments.  The opened index is attached: further updates
        log to the same WAL, and ``reorganize()`` commits the next
        generation in place.
        """
        manifest = load_manifest(path)
        saved = dict(manifest.get("index", {}))
        saved["name"] = str(manifest.get("name", pathlib.Path(path).name))
        saved.update(opts)
        cost = saved.pop("cost", None)
        # None lets load_decomposed fall back to the manifest's own format.
        target = saved.pop("format", None)
        store = load_decomposed(path, cost=cost, verify=verify, format=target)
        index = cls._from_store(store, **saved)
        if "sharding" in manifest and "shards" not in opts:
            # Restore the exact persisted shard layout (an explicit shards=
            # override recomputes a fresh balanced plan instead).
            index._epoch.shard_plan = ShardPlan.from_manifest(manifest["sharding"])
        if "approx" in manifest:
            # Persisted approximate structures load lazily, like the
            # fragment stores: nothing is read until the first approx query
            # (or explicit cluster_plan / hnsw_graph access) needs them.
            index._epoch.approx_records = dict(manifest["approx"])
            index._epoch.approx_dir = pathlib.Path(path)
        index._recover(pathlib.Path(path), manifest)
        return index

    def _recover(self, home: pathlib.Path, manifest: dict) -> None:
        """Attach to ``home`` and replay the WAL suffix into the delta tail."""
        mutability = manifest_mutability(manifest)
        epoch = self._epoch
        epoch.generation = mutability["generation"]
        token = wal_token((home / MANIFEST_NAME).read_bytes())
        records, last_lsn = read_wal(home / WAL_NAME, token=token)
        watermark = mutability["wal_lsn"]
        tail = epoch.tail
        for record in records:
            if record.lsn <= watermark:
                # Already merged into the committed fragments.
                continue
            if record.op == OP_INSERT:
                epoch.delta.record_append(record.vectors)
                tail = tail.with_insert(record.vectors, lsn=record.lsn)
            else:
                epoch.delta.record_delete(record.oids)
                tail = tail.with_delete(record.oids, lsn=record.lsn)
        epoch.tail = tail
        self._home = home
        self._wal = WriteAheadLog(
            home / WAL_NAME, token=token, next_lsn=max(watermark, last_lsn) + 1
        )

    def save(self, path: str | pathlib.Path, *, overwrite: bool = False) -> pathlib.Path:
        """Persist the collection plus the facade's build options — atomically.

        The manifest records the build options under ``"index"`` (including
        the approximate-tier config) and the shard layout under
        ``"sharding"``, so :meth:`open` restores both the shard count and
        the exact row boundaries.  Approximate structures that exist — built
        in this process, or carried over from the manifest this index was
        opened from — are persisted as sidecar arrays with the same
        integrity records as the fragments; an index that never touched the
        approximate tier writes no sidecars and its manifest carries no
        ``approx`` section.

        Every data file (fragments, row sums, sidecars) is written before
        the manifest commits via temp + fsync + atomic rename, so a crash
        mid-save leaves the target directory holding its previous store (or
        nothing), never a torn one.  Saving over an existing store commits
        the next generation under fresh file names and garbage-collects the
        superseded files after the commit.

        A pending delta tail cannot be saved as-is — call
        :meth:`reorganize` first (attached indexes persist the merge
        automatically).  On success the index is **attached** to ``path``:
        subsequent updates are WAL-logged there and recoverable by
        :meth:`open`.
        """
        with self.pin() as epoch:
            if not epoch.tail.is_empty:
                raise StorageError(
                    "the index has unmerged live updates; call reorganize() before "
                    "save() so the persisted fragments reflect the logical collection"
                )
            target_path = pathlib.Path(path)
            generation = next_generation(target_path)
            if (target_path / MANIFEST_NAME).exists() and not overwrite:
                # save_decomposed would raise too; raising before any file is
                # written keeps a refused save perfectly side-effect free.
                raise StorageError(
                    f"{target_path} already contains a persisted collection "
                    "(pass overwrite=True)"
                )
            approx_section, sidecar_files = self._approx_save_payload(generation)
            extra_manifest = {
                "index": {
                    "bits": self._bits,
                    "shards": self._shards,
                    "on_shard_failure": self._on_shard_failure,
                    "shard_executor": self._shard_executor,
                    "format": self._format.spec,
                    "approx": self._approx_config.to_manifest(),
                },
                "sharding": self.shard_plan.to_manifest(),
            }
            if approx_section:
                extra_manifest["approx"] = approx_section
            target = save_decomposed(
                self.decomposed,
                path,
                overwrite=overwrite,
                extra_manifest=extra_manifest,
                generation=generation,
                sidecar_files=sidecar_files,
            )
        self._attach(target)
        return target

    def _attach(self, home: pathlib.Path) -> None:
        """Bind the index to a freshly committed store directory.

        Any write-ahead log already at ``home`` belongs to a superseded
        manifest lineage (every record it held is either inside the
        committed fragments or belongs to a different store entirely), so it
        is dropped; a fresh log is created lazily on the first update.
        """
        token = wal_token((home / MANIFEST_NAME).read_bytes())
        if self._wal is not None:
            self._wal.close()
        (home / WAL_NAME).unlink(missing_ok=True)
        self._home = home
        self._wal = WriteAheadLog(home / WAL_NAME, token=token, next_lsn=1)

    def _approx_save_payload(self, generation: int = 0) -> tuple[dict, dict]:
        """Manifest section + sidecar payloads of the existing approx structures.

        "Existing" means built in memory or recorded in the manifest this
        index was opened from (the latter are loaded here so a round trip
        preserves them); structures that were never needed are not built
        just to be saved.
        """
        epoch = self._current_epoch()
        section: dict = {}
        files: dict = {}
        records = epoch.approx_records or {}
        if epoch.cluster_plan is not None or "ivf" in records:
            plan = self.cluster_plan
            arrays, payload = approx_sidecar_records(
                plan.to_arrays(), structure="ivf", generation=generation
            )
            section["ivf"] = {
                "seed": plan.seed,
                "iterations": plan.iterations,
                "n_clusters": plan.n_clusters,
                "arrays": arrays,
            }
            files.update(payload)
        if epoch.hnsw_graph is not None or "hnsw" in records:
            graph = self.hnsw_graph
            arrays, payload = approx_sidecar_records(
                graph.to_arrays(), structure="hnsw", generation=generation
            )
            section["hnsw"] = {
                "m": graph.m,
                "ef_construction": graph.ef_construction,
                "seed": graph.seed,
                "entry_point": graph.entry_point,
                "arrays": arrays,
            }
            files.update(payload)
        return section, files

    # -- shape / shared state -----------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """The logical **base** collection matrix, float64 (no cost charged).

        For the identity format this is the ingested matrix itself.  For a
        narrow format it is the quantised collection widened back to float64
        — the values every backend actually answers over — materialised (and
        cached) on first access; the query path of the decomposed backends
        never needs it, so answering from a lazy (mapped) index does not
        trigger it.  Live tail rows are *not* part of this matrix — they
        overlay answers until :meth:`reorganize` merges them.
        """
        epoch = self._current_epoch()
        if epoch.vectors is None:
            if epoch.input is not None:
                epoch.vectors = self._format.widen(self._format.quantise(epoch.input))
            else:
                epoch.vectors = self.decomposed.matrix
        return epoch.vectors

    @property
    def name(self) -> str:
        """Collection label."""
        return self._name

    @property
    def format(self) -> "FragmentFormat":
        """The fragment format (dtype x residency) of the physical stores."""
        return self._format

    @property
    def cardinality(self) -> int:
        """Number of vectors in the **base** snapshot (excluding the live tail)."""
        return self._current_epoch().base_cardinality

    @property
    def dimensionality(self) -> int:
        """Number of dimensions per vector."""
        return self._dimensionality

    def __len__(self) -> int:
        return self.cardinality

    @property
    def cost(self) -> CostModel:
        """The shared cost model every store and backend charges."""
        return self._cost

    @property
    def shards(self) -> int:
        """The row-shard count the index was built with."""
        return self._shards

    @property
    def on_shard_failure(self) -> str:
        """Shard-failure policy handed to the sharded engines."""
        return self._on_shard_failure

    @property
    def shard_executor(self) -> str:
        """Worker-pool kind of the sharded engines (``"thread"`` / ``"process"``)."""
        return self._shard_executor

    @property
    def shard_plan(self) -> ShardPlan:
        """The row partition of the ``sharded_bond`` backend.

        A balanced plan over :attr:`shards` shards, computed on first use —
        or the exact layout restored from a persisted manifest.  The plan
        covers the base snapshot; live tail rows overlay every backend's
        answer and are re-sharded at the next :meth:`reorganize`.
        """
        epoch = self._current_epoch()
        if epoch.shard_plan is None:
            epoch.shard_plan = ShardPlan.balanced(epoch.base_cardinality, self._shards)
        return epoch.shard_plan

    # -- live mutability ----------------------------------------------------------

    @property
    def generation(self) -> int:
        """The committed store generation this index serves (0 for in-memory)."""
        return self._current_epoch().generation

    @property
    def live_count(self) -> int:
        """Logical collection size: live base rows plus live tail rows."""
        return self._current_epoch().tail.live_count

    @property
    def tail_rows(self) -> int:
        """Rows inserted since the last reorganisation (dead ones included)."""
        return self._current_epoch().tail.tail_rows

    @property
    def deleted_count(self) -> int:
        """Base rows deleted since the last reorganisation."""
        return self._current_epoch().tail.deleted_base_count

    @property
    def pending_updates(self) -> int:
        """Buffered update operations awaiting the next :meth:`reorganize`."""
        return len(self._current_epoch().delta)

    def insert(self, vectors: np.ndarray) -> np.ndarray:
        """Insert one or more vectors; returns their assigned OIDs.

        The rows become visible to every subsequent ``answer`` immediately
        (via the tail overlay) and are merged into the base fragments at the
        next :meth:`reorganize`.  On an attached index the insert is written
        to the write-ahead log and fsynced **before** this method returns —
        an acknowledged insert survives any crash.  OIDs continue past the
        current coordinate system (base rows, then tail rows in insert
        order) and are compacted by the next reorganisation exactly like
        :meth:`repro.engine.updates.DeltaLog.apply` does.
        """
        rows = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise QueryError(f"insert needs one or more vector rows, got shape {rows.shape}")
        if rows.shape[1] != self._dimensionality:
            raise QueryError(
                f"inserted vectors have {rows.shape[1]} dimensions, "
                f"index has {self._dimensionality}"
            )
        with self._mutation_lock:
            epoch = self._epoch
            if self._wal is not None:
                lsn = self._wal.append_insert(rows)
            else:
                lsn = epoch.tail.last_lsn + 1
            # Durable (or in-memory acknowledged) — now publish.
            epoch.delta.record_append(rows)
            start = epoch.tail.total_cardinality
            epoch.tail = epoch.tail.with_insert(rows, lsn=lsn)
            return np.arange(start, start + rows.shape[0], dtype=np.int64)

    def delete(self, oids) -> int:
        """Delete the vectors with the given OIDs; returns how many were named.

        Takes effect immediately for every subsequent ``answer``.  OIDs are
        validated against the current coordinate system (base plus tail)
        before anything is logged; deleting an already-deleted row again is
        a no-op, an OID that never existed raises.  On an attached index the
        delete is WAL-logged and fsynced before this method returns.
        """
        oid_array = np.atleast_1d(np.asarray(oids, dtype=np.int64))
        if oid_array.ndim != 1:
            raise QueryError("delete expects a flat sequence of OIDs")
        if oid_array.size == 0:
            return 0
        with self._mutation_lock:
            epoch = self._epoch
            # Validate BEFORE logging: the WAL must never hold a record that
            # cannot replay.
            if oid_array.min() < 0 or oid_array.max() >= epoch.tail.total_cardinality:
                raise StorageError(
                    f"delete targets an OID outside the collection "
                    f"(coordinate system is [0, {epoch.tail.total_cardinality}))"
                )
            if self._wal is not None:
                lsn = self._wal.append_delete(oid_array)
            else:
                lsn = epoch.tail.last_lsn + 1
            epoch.delta.record_delete(oid_array)
            epoch.tail = epoch.tail.with_delete(oid_array, lsn=lsn)
            return int(oid_array.size)

    def reorganize(self) -> int:
        """Merge the delta tail into fresh base fragments; returns the generation.

        The paper's "periodic reorganisation": buffered appends and deletes
        are applied to the base collection (via
        :meth:`~repro.engine.updates.DeltaLog.apply` on a snapshot — a
        failure leaves the live state untouched), the merged collection gets
        fresh stores, a fresh shard plan, and a cleared tail, and the whole
        bundle is published as the next epoch with one atomic swap.
        In-flight queries finish on the epoch they pinned; new queries see
        the new one.  Serving never stops.

        On an attached index the merged fragments are committed **durably**
        as the next manifest generation (every data file fsynced, manifest
        temp + fsync + atomic rename) before the epoch swaps and before the
        WAL resets — a crash anywhere leaves the directory opening as either
        the old generation plus its replayable WAL, or the new generation.

        Approximate-tier structures are built over the base snapshot, so a
        reorganisation drops them; they rebuild lazily (same seeds) over the
        merged collection on next use.  A clean index is a no-op.
        """
        with self._mutation_lock:
            epoch = self._epoch
            if epoch.tail.is_empty and not len(epoch.delta):
                return epoch.generation
            merged = epoch.delta.snapshot().apply(self.vectors)
            if merged.shape[0] == 0:
                raise StorageError(
                    "reorganisation would delete every row; an index cannot be empty"
                )
            generation = epoch.generation + 1
            new_epoch = self._fresh_epoch(
                generation=generation, base_cardinality=int(merged.shape[0])
            )
            new_epoch.input = merged
            new_epoch.vectors = merged if self._format.is_identity else None
            if self._home is not None:
                # Build the merged store and commit it durably BEFORE the
                # swap: if anything here raises (including injected faults),
                # the live epoch, delta log, and WAL are untouched.
                new_epoch.decomposed = DecomposedStore(
                    merged, cost=self._cost, name=self._name, format=self._format
                )
                extra_manifest = {
                    "index": {
                        "bits": self._bits,
                        "shards": self._shards,
                        "on_shard_failure": self._on_shard_failure,
                        "shard_executor": self._shard_executor,
                        "format": self._format.spec,
                        "approx": self._approx_config.to_manifest(),
                    },
                    "sharding": ShardPlan.balanced(
                        int(merged.shape[0]), self._shards
                    ).to_manifest(),
                }
                save_decomposed(
                    new_epoch.decomposed,
                    self._home,
                    overwrite=True,
                    extra_manifest=extra_manifest,
                    generation=generation,
                    wal_lsn=epoch.tail.last_lsn,
                    durable=True,
                )
                token = wal_token((self._home / MANIFEST_NAME).read_bytes())
                # The commit owns every logged record; swap, then retire the
                # old log under the new lineage.  A crash between the commit
                # and the reset is safe: the old log's token no longer
                # matches the manifest, so open() ignores it.
                self._epoch = new_epoch
                assert self._wal is not None
                self._wal.reset(token=token)
            else:
                self._epoch = new_epoch
            # The superseded epoch's cached searchers can hold real resources
            # (process pools, shared-memory segments); tear them down once
            # the last query pinned to it finishes — never under a reader.
            epoch.retire(lambda: self._close_epoch_resources(epoch))
            return generation

    # -- lifecycle -----------------------------------------------------------------

    @staticmethod
    def _close_epoch_resources(epoch: Epoch) -> None:
        """Close everything one epoch's cache holds onto.

        Cached searchers that expose ``close()`` (the sharded engines — their
        process pools and shared-memory segments must not outlive the epoch)
        are closed; plain searchers are simply dropped.  The live tail's
        sub-index releases its own cached engines recursively.
        """
        searchers = list(epoch.searchers.values())
        epoch.searchers.clear()
        for searcher in searchers:
            closer = getattr(searcher, "close", None)
            if callable(closer):
                closer()
        sub = epoch.tail.sub_index
        if sub is not None:
            epoch.tail.sub_index = None
            sub.close()

    def close(self) -> None:
        """Release every resource the index owns (idempotent).

        Closes the current epoch's cached backend engines — including any
        process-pool sharded engines, whose worker processes exit and whose
        shared-memory segments are unlinked — plus the tail sub-index and,
        on an attached index, the write-ahead log.  Answering again after
        ``close()`` is permitted (engines rebuild lazily), but further
        mutations on an attached index are not.  ``Index`` is also a context
        manager: ``with Index.build(...) as index: ...`` closes on exit.
        """
        self._close_epoch_resources(self._epoch)
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "Index":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- approximate-tier structures ----------------------------------------------

    @property
    def approx_config(self) -> ApproxConfig:
        """The approximate-tier build configuration."""
        return self._approx_config

    @property
    def cluster_plan(self) -> ClusterPlan:
        """The IVF cluster plan: persisted arrays if present, else a seeded build."""
        epoch = self._current_epoch()
        if epoch.cluster_plan is None:
            record = (epoch.approx_records or {}).get("ivf")
            if record is not None:
                assert epoch.approx_dir is not None
                arrays = {
                    name: load_approx_array(epoch.approx_dir, array_record)
                    for name, array_record in record["arrays"].items()
                }
                epoch.cluster_plan = ClusterPlan.from_arrays(
                    arrays, seed=record["seed"], iterations=record["iterations"]
                )
            else:
                config = self._approx_config
                epoch.cluster_plan = build_cluster_plan(
                    self.vectors,
                    n_clusters=config.resolve_n_clusters(self.cardinality),
                    iterations=config.kmeans_iterations,
                    seed=config.seed,
                )
        return epoch.cluster_plan

    @property
    def ivf_partitions(self) -> IVFPartitions:
        """The permuted store + zero-copy partition slices of the IVF backend."""
        epoch = self._current_epoch()
        if epoch.ivf_partitions is None:
            epoch.ivf_partitions = IVFPartitions(
                self.decomposed, self.cluster_plan, cost=self._cost, name=self._name
            )
        return epoch.ivf_partitions

    @property
    def hnsw_graph(self) -> HNSWGraph:
        """The HNSW graph: persisted arrays if present, else a seeded build."""
        epoch = self._current_epoch()
        if epoch.hnsw_graph is None:
            record = (epoch.approx_records or {}).get("hnsw")
            if record is not None:
                assert epoch.approx_dir is not None
                arrays = {
                    name: load_approx_array(epoch.approx_dir, array_record)
                    for name, array_record in record["arrays"].items()
                }
                epoch.hnsw_graph = HNSWGraph.from_arrays(
                    arrays,
                    m=record["m"],
                    ef_construction=record["ef_construction"],
                    seed=record["seed"],
                    entry_point=record["entry_point"],
                )
            else:
                config = self._approx_config
                epoch.hnsw_graph = build_hnsw_graph(
                    self.vectors,
                    m=config.m,
                    ef_construction=config.ef_construction,
                    seed=config.seed,
                )
        return epoch.hnsw_graph

    @property
    def planner(self) -> QueryPlanner:
        """The capability-driven planner answering queries."""
        return self._planner

    # -- lazily materialised stores ----------------------------------------------

    @property
    def row_store(self) -> RowStore:
        """The horizontal (NSM) representation, built on first use."""
        epoch = self._current_epoch()
        if epoch.row_store is None:
            source = epoch.input if epoch.input is not None else self.vectors
            epoch.row_store = RowStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return epoch.row_store

    @property
    def decomposed(self) -> DecomposedStore:
        """The vertically decomposed representation, built on first use."""
        epoch = self._current_epoch()
        if epoch.decomposed is None:
            source = epoch.input if epoch.input is not None else self.vectors
            epoch.decomposed = DecomposedStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return epoch.decomposed

    @property
    def compressed(self) -> CompressedStore:
        """The 8-bit quantised representation, built on first use."""
        epoch = self._current_epoch()
        if epoch.compressed is None:
            epoch.compressed = CompressedStore(self.decomposed, bits=self._bits)
        return epoch.compressed

    # -- planning and answering ---------------------------------------------------

    def resolved_metric(self, query: Query) -> Metric:
        """The metric instance for ``query``, cached per specification."""
        key = query.metric_spec_key()
        metric = self._metrics.get(key)
        if metric is None:
            metric = query.resolve_metric()
            self._metrics[key] = metric
        return metric

    def searcher_for(self, backend, query: Query, metric: Metric):
        """The (cached) underlying searcher of ``backend`` for this metric.

        Caching is what keeps expensive backends affordable through the
        facade: the R-tree is bulk-loaded once, the compressed store is
        quantised once, and BOND's reusable scratch buffers persist across
        ``answer()`` calls exactly as they would for a long-lived directly
        constructed searcher.  The cache lives on the epoch — searchers hold
        references to the epoch's stores, so a reorganisation retires them
        with the rest of the old generation.
        """
        epoch = self._current_epoch()
        key = (backend.name, query.metric_spec_key())
        searcher = epoch.searchers.get(key)
        if searcher is None:
            searcher = backend.create(self, metric)
            epoch.searchers[key] = searcher
        return searcher

    def plan(self, query: Query) -> Plan:
        """Plan ``query`` without executing it."""
        return self._planner.plan(query)

    def explain(self, query: Query) -> str:
        """The planning transcript for ``query`` (nothing is executed)."""
        return self._planner.explain(query)

    def execute(
        self, query: Query, *, backend: str | None = None, plan: Plan | None = None
    ) -> SearchResult | BatchSearchResult:
        """Execute ``query`` on one backend, with the live-update overlay.

        The building block under :meth:`answer` that external executors
        (the serving layer's retry/failover loop) call directly: ``plan``
        reuses an existing planning decision, ``backend`` overrides which
        backend runs (a failover substitute).  Like :meth:`answer`, the
        whole execution is pinned to one epoch and the delta tail is
        overlaid exactly on the base answer.
        """
        with self.pin() as epoch:
            if plan is None:
                plan = self._planner.plan(query)
            chosen = (
                plan.backend if backend is None else self._planner.registry.get(backend)
            )
            return self._execute_on(chosen, query, plan.metric, epoch)

    def _execute_on(
        self, backend, query: Query, metric: Metric, epoch: Epoch
    ) -> SearchResult | BatchSearchResult:
        """Run one backend and overlay the epoch's tail on its answer.

        The update-free path is untouched (and bitwise identical to the
        pre-mutability facade): an empty tail hands the query straight to
        the backend.  With live updates, the backend answers over the base
        snapshot at an inflated top-k (enough to survive the delete filter),
        and the overlay merges the live tail rows deterministically.
        """
        tail = epoch.tail
        if tail.is_empty:
            return backend.answer(self, query, metric)
        base_k = inflated_k(query.k, tail)
        base_query = query if base_k == query.k else dataclasses.replace(query, k=base_k)
        base = backend.answer(self, base_query, metric)
        tail_scores = self._tail_scores(backend, query, metric, tail)
        return overlay_answer(base, query.k, metric, tail, self._cost, tail_scores)

    def _tail_index(self, tail: TailState) -> "Index":
        """The tail-only sub-index of one tail state, built once per state.

        Covers exactly the live tail rows (local OID = rank among the live
        rows, ascending — the order of ``tail.live_oids``) in the same
        fragment format, sharing the same cost model, so a backend scoring
        the tail charges and quantises exactly as it will once the rows are
        reorganised into the base.
        """
        sub = tail.sub_index
        if sub is None:
            sub = Index(
                tail.live_raw_rows(),
                name=f"{self._name}-tail",
                bits=self._bits,
                cost=self._cost,
                format=self._format,
            )
            tail.sub_index = sub
        return sub

    def _tail_scores(self, backend, query: Query, metric: Metric, tail: TailState):
        """Per-query scores of every live tail row, or None without live rows.

        Exact backends score the tail **through their own kernels** over the
        tail-only sub-index: every exact engine's per-row score accumulates
        in a query-determined order independent of the rest of the
        collection, so these scores are bitwise what the same backend
        computes over the rebuilt (post-reorganisation) collection — the
        property the rebuild-identity contract rests on.  Approximate
        backends (no bitwise contract) use a plain exact metric scan of the
        tail instead, which also means a fresh insert can never be hidden by
        a stale graph or cluster assignment.
        """
        live = tail.live_tail_count
        if live == 0:
            return None
        if getattr(backend.capabilities, "exact", True):
            sub = self._tail_index(tail)
            sub_query = dataclasses.replace(query, k=live)
            answer = backend.answer(sub, sub_query, metric)
            results = (
                answer.results if isinstance(answer, BatchSearchResult) else [answer]
            )
            scores = np.empty((len(results), live), dtype=np.float64)
            for row, result in enumerate(results):
                scores[row, result.oids] = result.scores
            return scores
        _, rows = tail.live_tail()
        matrix = query.query_matrix
        scores = np.empty((matrix.shape[0], live), dtype=np.float64)
        for row in range(matrix.shape[0]):
            scores[row] = metric.score(rows, matrix[row])
        self._cost.charge_arithmetic(
            int(rows.size) * metric.arithmetic_ops_per_value() * matrix.shape[0]
        )
        return scores

    def answer(
        self, query: Query, *, failover: bool = False
    ) -> SearchResult | BatchSearchResult:
        """Plan and execute ``query`` on the cheapest capable backend.

        Returns a :class:`~repro.core.result.SearchResult` for single-vector
        queries and a :class:`~repro.core.result.BatchSearchResult` for
        batches, exactly as the underlying searcher would.  Under live
        updates (see :meth:`insert` / :meth:`delete`) the answer is the
        overlay-corrected top-k: bitwise identical to an index rebuilt from
        scratch at the same logical state.

        With ``failover=True``, an execution-time
        :class:`~repro.errors.BackendError` from the planned backend is not
        final: the planner's :meth:`~repro.api.planner.Plan.failover_chain`
        is walked (next-cheapest eligible *exact* backend first) until one
        answers.  Exact substitutes return answers bitwise identical to the
        planned exact backend — and when an approximate backend fails over,
        the substitute is exact too (recall 1.0 satisfies any approx
        request; the chain never swaps one approximation for another).
        When the whole chain fails the per-backend errors
        are collected into :class:`~repro.errors.FailoverExhausted`; a
        single-entry chain re-raises the original error unchanged.
        """
        with self.pin() as epoch:
            plan = self._planner.plan(query)
            if not failover:
                return self._execute_on(plan.backend, query, plan.metric, epoch)
            attempts: list[tuple[str, BackendError]] = []
            chain = plan.failover_chain()
            for backend_name in chain:
                backend = self._planner.registry.get(backend_name)
                try:
                    return self._execute_on(backend, query, plan.metric, epoch)
                except BackendError as exc:
                    attempts.append((backend_name, exc))
            if len(chain) == 1:
                raise attempts[0][1]
            summary = "; ".join(f"{name}: {error}" for name, error in attempts)
            raise FailoverExhausted(
                f"all {len(attempts)} capable backends failed ({summary})",
                attempts=attempts,
            )
