"""The :class:`Index` facade: one object that owns the stores and answers
declarative queries.

An :class:`Index` wraps a feature-vector collection and lazily materialises
every physical representation a registered backend might need — the
horizontal :class:`~repro.storage.rowstore.RowStore`, the vertically
decomposed :class:`~repro.storage.decomposed.DecomposedStore`, and the 8-bit
:class:`~repro.storage.compressed.CompressedStore` — against a single shared
cost model.  ``answer(query)`` plans the query with the capability-driven
:class:`~repro.api.planner.QueryPlanner` and executes it on the chosen
backend; ``explain(query)`` shows the decision without executing anything.

Typical usage::

    from repro.api import Index, Query

    index = Index.build(histograms, name="corel")
    result = index.answer(Query(histograms[42], k=10, metric="histogram"))
    print(index.explain(Query(histograms[42], k=10, mode="compressed")))

Facade answers are **bitwise identical** to direct searcher calls: the
backends construct the underlying searchers with exactly the defaults a
direct caller would get and invoke the same ``search`` / ``search_batch``
entry points (the equivalence suite in ``tests/test_api_facade.py`` pins
this for every registered backend and mode).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.api.capabilities import BackendRegistry
from repro.api.planner import Plan, QueryPlanner
from repro.api.query import Query
from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel
from repro.errors import BackendError, FailoverExhausted, QueryError
from repro.metrics.base import Metric
from repro.storage.compressed import CompressedStore
from repro.storage.decomposed import DecomposedStore
from repro.storage.formats import FragmentFormat
from repro.storage.persistence import load_decomposed, load_manifest, save_decomposed
from repro.storage.rowstore import RowStore
from repro.storage.sharding import ShardPlan

# Importing the backends module registers the built-ins with the default
# registry; the import is for its side effect.
import repro.api.backends  # noqa: F401


class Index:
    """Facade over one vector collection and every way of searching it.

    Parameters
    ----------
    vectors:
        The ``|X| x N`` matrix of feature vectors.
    name:
        Label used in store names and persisted manifests.
    bits:
        Bits per coefficient of the lazily built compressed representation
        (the paper uses 8).
    cost:
        Shared cost model every store and backend charges; a private model is
        created when omitted, so all work done through one index accumulates
        in one place.
    registry:
        Backend registry to plan against (defaults to the built-ins).
    shards:
        Row-shard count of the parallel ``sharded_bond`` backend (default 1:
        unsharded, so the single-store engines keep winning the plan).  The
        resulting balanced :class:`~repro.storage.sharding.ShardPlan` is
        persisted in the manifest by :meth:`save` and restored by
        :meth:`open`.
    on_shard_failure:
        Shard-failure policy of the sharded engines: ``"fail"`` (default)
        re-raises a failed shard's error, ``"partial"`` merges the surviving
        shards into a flagged degraded answer (see
        :class:`~repro.core.parallel.ShardedBondSearcher`).
    format:
        The :class:`~repro.storage.formats.FragmentFormat` (or its
        ``"float32/mmap"``-style spec) of the physical stores.  The default
        ``float64/ram`` preserves the ingested values bit for bit; narrow
        dtypes quantise once at ingest and every backend then answers over
        the float64-widened quantised collection (see the
        :mod:`repro.storage.formats` contract).  Persisted by :meth:`save`
        and restored by :meth:`open`.
    """

    SHARD_FAILURE_MODES = ("fail", "partial")

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        name: str = "collection",
        bits: int = 8,
        cost: CostModel | None = None,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
        format: "FragmentFormat | str | None" = None,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise QueryError(f"an index needs a non-empty 2-D vector matrix, got {matrix.shape}")
        self._setup(
            name=name,
            bits=bits,
            cost=cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            format=FragmentFormat.coerce(format),
            cardinality=int(matrix.shape[0]),
            dimensionality=int(matrix.shape[1]),
        )
        self._input = matrix
        # The logical (format-quantised, float64-widened) collection; for the
        # identity format it IS the ingested matrix, narrow formats derive it
        # lazily in the `vectors` property.
        self._vectors = matrix if self._format.is_identity else None

    def _setup(
        self,
        *,
        name: str,
        bits: int,
        cost: CostModel | None,
        registry: BackendRegistry | None,
        shards: int,
        on_shard_failure: str,
        format: "FragmentFormat",
        cardinality: int,
        dimensionality: int,
    ) -> None:
        """Option validation + shared state; matrix-independent, so the
        :meth:`open` path can run it without materialising the collection."""
        if shards < 1:
            raise QueryError("shards must be at least 1")
        if on_shard_failure not in self.SHARD_FAILURE_MODES:
            raise QueryError(
                f"on_shard_failure must be one of {self.SHARD_FAILURE_MODES}, "
                f"got {on_shard_failure!r}"
            )
        self._name = name
        self._bits = bits
        self._on_shard_failure = on_shard_failure
        self._shards = int(shards)
        self._format = format
        self._cardinality = cardinality
        self._dimensionality = dimensionality
        self._shard_plan: ShardPlan | None = None
        self._cost = cost if cost is not None else CostModel()
        self._planner = QueryPlanner(self, registry=registry)
        self._input: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        # Lazily materialised physical representations.
        self._row_store: RowStore | None = None
        self._decomposed: DecomposedStore | None = None
        self._compressed: CompressedStore | None = None
        # Caches keyed by the query's metric specification so repeated
        # answers reuse metric instances and (expensive-to-build) searchers.
        self._metrics: dict[tuple, Metric] = {}
        self._searchers: dict[tuple[str, tuple], object] = {}

    @classmethod
    def _from_store(
        cls,
        store: DecomposedStore,
        *,
        name: str,
        bits: int = 8,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
    ) -> "Index":
        """An index over an already-constructed decomposed store.

        The :meth:`open` path: the loaded (possibly memory-mapped) fragments
        become the index's decomposed store directly, and nothing
        materialises the row-major matrix — which is what lets an index
        larger than RAM open and answer queries.
        """
        index = object.__new__(cls)
        index._setup(
            name=name,
            bits=bits,
            cost=store.cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            format=store.format,
            cardinality=store.cardinality,
            dimensionality=store.dimensionality,
        )
        index._decomposed = store
        return index

    # -- construction / persistence ----------------------------------------------

    @classmethod
    def build(cls, vectors: np.ndarray, **opts) -> "Index":
        """Build an index over an in-memory collection (see ``__init__``)."""
        return cls(vectors, **opts)

    @classmethod
    def open(cls, path: str | pathlib.Path, *, verify: str = "none", **opts) -> "Index":
        """Open a collection persisted by :meth:`save`.

        Build options recorded in the manifest (name, compression bits,
        shard-failure policy, fragment format) are restored; explicit keyword
        arguments override them — in particular ``format="float64/mmap"``
        reopens the persisted fragments as read-only memory maps, so the
        index comes up without reading a coefficient and a collection larger
        than RAM pages fragments in as queries touch them.
        ``verify="checksum"`` re-hashes every fragment file against the
        manifest's recorded checksums while loading and raises
        :class:`~repro.errors.CorruptFragmentError` (naming the fragment) on
        any mismatch; for memory-mapped targets the files are verified by
        streaming in chunks, never by faulting the mapping in — see
        :func:`~repro.storage.persistence.load_decomposed`.
        """
        manifest = load_manifest(path)
        saved = dict(manifest.get("index", {}))
        saved["name"] = str(manifest.get("name", pathlib.Path(path).name))
        saved.update(opts)
        cost = saved.pop("cost", None)
        # None lets load_decomposed fall back to the manifest's own format.
        target = saved.pop("format", None)
        store = load_decomposed(path, cost=cost, verify=verify, format=target)
        index = cls._from_store(store, **saved)
        if "sharding" in manifest and "shards" not in opts:
            # Restore the exact persisted shard layout (an explicit shards=
            # override recomputes a fresh balanced plan instead).
            index._shard_plan = ShardPlan.from_manifest(manifest["sharding"])
        return index

    def save(self, path: str | pathlib.Path, *, overwrite: bool = False) -> pathlib.Path:
        """Persist the collection plus the facade's build options.

        The manifest records the build options under ``"index"`` and the
        shard layout under ``"sharding"``, so :meth:`open` restores both the
        shard count and the exact row boundaries.
        """
        return save_decomposed(
            self.decomposed,
            path,
            overwrite=overwrite,
            extra_manifest={
                "index": {
                    "bits": self._bits,
                    "shards": self._shards,
                    "on_shard_failure": self._on_shard_failure,
                    "format": self._format.spec,
                },
                "sharding": self.shard_plan.to_manifest(),
            },
        )

    # -- shape / shared state -----------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """The logical collection matrix, float64 (no cost charged).

        For the identity format this is the ingested matrix itself.  For a
        narrow format it is the quantised collection widened back to float64
        — the values every backend actually answers over — materialised (and
        cached) on first access; the query path of the decomposed backends
        never needs it, so answering from a lazy (mapped) index does not
        trigger it.
        """
        if self._vectors is None:
            if self._input is not None:
                self._vectors = self._format.widen(self._format.quantise(self._input))
            else:
                self._vectors = self.decomposed.matrix
        return self._vectors

    @property
    def name(self) -> str:
        """Collection label."""
        return self._name

    @property
    def format(self) -> "FragmentFormat":
        """The fragment format (dtype x residency) of the physical stores."""
        return self._format

    @property
    def cardinality(self) -> int:
        """Number of vectors."""
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        """Number of dimensions per vector."""
        return self._dimensionality

    def __len__(self) -> int:
        return self.cardinality

    @property
    def cost(self) -> CostModel:
        """The shared cost model every store and backend charges."""
        return self._cost

    @property
    def shards(self) -> int:
        """The row-shard count the index was built with."""
        return self._shards

    @property
    def on_shard_failure(self) -> str:
        """Shard-failure policy handed to the sharded engines."""
        return self._on_shard_failure

    @property
    def shard_plan(self) -> ShardPlan:
        """The row partition of the ``sharded_bond`` backend.

        A balanced plan over :attr:`shards` shards, computed on first use —
        or the exact layout restored from a persisted manifest.
        """
        if self._shard_plan is None:
            self._shard_plan = ShardPlan.balanced(self.cardinality, self._shards)
        return self._shard_plan

    @property
    def planner(self) -> QueryPlanner:
        """The capability-driven planner answering queries."""
        return self._planner

    # -- lazily materialised stores ----------------------------------------------

    @property
    def row_store(self) -> RowStore:
        """The horizontal (NSM) representation, built on first use."""
        if self._row_store is None:
            source = self._input if self._input is not None else self.vectors
            self._row_store = RowStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return self._row_store

    @property
    def decomposed(self) -> DecomposedStore:
        """The vertically decomposed representation, built on first use."""
        if self._decomposed is None:
            source = self._input if self._input is not None else self.vectors
            self._decomposed = DecomposedStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return self._decomposed

    @property
    def compressed(self) -> CompressedStore:
        """The 8-bit quantised representation, built on first use."""
        if self._compressed is None:
            self._compressed = CompressedStore(self.decomposed, bits=self._bits)
        return self._compressed

    # -- planning and answering ---------------------------------------------------

    def resolved_metric(self, query: Query) -> Metric:
        """The metric instance for ``query``, cached per specification."""
        key = query.metric_spec_key()
        metric = self._metrics.get(key)
        if metric is None:
            metric = query.resolve_metric()
            self._metrics[key] = metric
        return metric

    def searcher_for(self, backend, query: Query, metric: Metric):
        """The (cached) underlying searcher of ``backend`` for this metric.

        Caching is what keeps expensive backends affordable through the
        facade: the R-tree is bulk-loaded once, the compressed store is
        quantised once, and BOND's reusable scratch buffers persist across
        ``answer()`` calls exactly as they would for a long-lived directly
        constructed searcher.
        """
        key = (backend.name, query.metric_spec_key())
        searcher = self._searchers.get(key)
        if searcher is None:
            searcher = backend.create(self, metric)
            self._searchers[key] = searcher
        return searcher

    def plan(self, query: Query) -> Plan:
        """Plan ``query`` without executing it."""
        return self._planner.plan(query)

    def explain(self, query: Query) -> str:
        """The planning transcript for ``query`` (nothing is executed)."""
        return self._planner.explain(query)

    def answer(
        self, query: Query, *, failover: bool = False
    ) -> SearchResult | BatchSearchResult:
        """Plan and execute ``query`` on the cheapest capable backend.

        Returns a :class:`~repro.core.result.SearchResult` for single-vector
        queries and a :class:`~repro.core.result.BatchSearchResult` for
        batches, exactly as the underlying searcher would.

        With ``failover=True``, an execution-time
        :class:`~repro.errors.BackendError` from the planned backend is not
        final: the planner's :meth:`~repro.api.planner.Plan.failover_chain`
        is walked (next-cheapest eligible backend first) until one answers.
        Every backend is exact, so a failover answer is bitwise identical to
        the planned one.  When the whole chain fails the per-backend errors
        are collected into :class:`~repro.errors.FailoverExhausted`; a
        single-entry chain re-raises the original error unchanged.
        """
        plan = self._planner.plan(query)
        if not failover:
            return plan.backend.answer(self, query, plan.metric)
        attempts: list[tuple[str, BackendError]] = []
        chain = plan.failover_chain()
        for backend_name in chain:
            backend = self._planner.registry.get(backend_name)
            try:
                return backend.answer(self, query, plan.metric)
            except BackendError as exc:
                attempts.append((backend_name, exc))
        if len(chain) == 1:
            raise attempts[0][1]
        summary = "; ".join(f"{name}: {error}" for name, error in attempts)
        raise FailoverExhausted(
            f"all {len(attempts)} capable backends failed ({summary})",
            attempts=attempts,
        )
