"""The :class:`Index` facade: one object that owns the stores and answers
declarative queries.

An :class:`Index` wraps a feature-vector collection and lazily materialises
every physical representation a registered backend might need — the
horizontal :class:`~repro.storage.rowstore.RowStore`, the vertically
decomposed :class:`~repro.storage.decomposed.DecomposedStore`, and the 8-bit
:class:`~repro.storage.compressed.CompressedStore` — against a single shared
cost model.  ``answer(query)`` plans the query with the capability-driven
:class:`~repro.api.planner.QueryPlanner` and executes it on the chosen
backend; ``explain(query)`` shows the decision without executing anything.

Typical usage::

    from repro.api import Index, Query

    index = Index.build(histograms, name="corel")
    result = index.answer(Query(histograms[42], k=10, metric="histogram"))
    print(index.explain(Query(histograms[42], k=10, mode="compressed")))

Facade answers are **bitwise identical** to direct searcher calls: the
backends construct the underlying searchers with exactly the defaults a
direct caller would get and invoke the same ``search`` / ``search_batch``
entry points (the equivalence suite in ``tests/test_api_facade.py`` pins
this for every registered backend and mode).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.api.capabilities import BackendRegistry
from repro.api.planner import Plan, QueryPlanner
from repro.api.query import Query
from repro.approx import (
    ApproxConfig,
    ClusterPlan,
    HNSWGraph,
    IVFPartitions,
    build_cluster_plan,
    build_hnsw_graph,
)
from repro.core.result import BatchSearchResult, SearchResult
from repro.engine.cost import CostModel
from repro.errors import BackendError, FailoverExhausted, QueryError
from repro.metrics.base import Metric
from repro.storage.compressed import CompressedStore
from repro.storage.decomposed import DecomposedStore
from repro.storage.formats import FragmentFormat
from repro.storage.persistence import (
    approx_sidecar_records,
    load_approx_array,
    load_decomposed,
    load_manifest,
    save_decomposed,
    write_approx_sidecars,
)
from repro.storage.rowstore import RowStore
from repro.storage.sharding import ShardPlan

# Importing the backends module registers the built-ins with the default
# registry; the import is for its side effect.
import repro.api.backends  # noqa: F401


class Index:
    """Facade over one vector collection and every way of searching it.

    Parameters
    ----------
    vectors:
        The ``|X| x N`` matrix of feature vectors.
    name:
        Label used in store names and persisted manifests.
    bits:
        Bits per coefficient of the lazily built compressed representation
        (the paper uses 8).
    cost:
        Shared cost model every store and backend charges; a private model is
        created when omitted, so all work done through one index accumulates
        in one place.
    registry:
        Backend registry to plan against (defaults to the built-ins).
    shards:
        Row-shard count of the parallel ``sharded_bond`` backend (default 1:
        unsharded, so the single-store engines keep winning the plan).  The
        resulting balanced :class:`~repro.storage.sharding.ShardPlan` is
        persisted in the manifest by :meth:`save` and restored by
        :meth:`open`.
    on_shard_failure:
        Shard-failure policy of the sharded engines: ``"fail"`` (default)
        re-raises a failed shard's error, ``"partial"`` merges the surviving
        shards into a flagged degraded answer (see
        :class:`~repro.core.parallel.ShardedBondSearcher`).
    format:
        The :class:`~repro.storage.formats.FragmentFormat` (or its
        ``"float32/mmap"``-style spec) of the physical stores.  The default
        ``float64/ram`` preserves the ingested values bit for bit; narrow
        dtypes quantise once at ingest and every backend then answers over
        the float64-widened quantised collection (see the
        :mod:`repro.storage.formats` contract).  Persisted by :meth:`save`
        and restored by :meth:`open`.
    approx:
        The :class:`~repro.approx.ApproxConfig` (or a mapping of its fields)
        of the approximate tier: IVF cluster count and k-means budget, HNSW
        degree and construction beam, the shared seed, and the default query
        knobs.  The structures themselves build lazily on first
        ``mode="approx"`` use; built structures are persisted by
        :meth:`save` (manifest v4 sidecar arrays) and reopened lazily by
        :meth:`open`.
    """

    SHARD_FAILURE_MODES = ("fail", "partial")

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        name: str = "collection",
        bits: int = 8,
        cost: CostModel | None = None,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
        format: "FragmentFormat | str | None" = None,
        approx: "ApproxConfig | dict | None" = None,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise QueryError(f"an index needs a non-empty 2-D vector matrix, got {matrix.shape}")
        self._setup(
            name=name,
            bits=bits,
            cost=cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            format=FragmentFormat.coerce(format),
            approx=approx,
            cardinality=int(matrix.shape[0]),
            dimensionality=int(matrix.shape[1]),
        )
        self._input = matrix
        # The logical (format-quantised, float64-widened) collection; for the
        # identity format it IS the ingested matrix, narrow formats derive it
        # lazily in the `vectors` property.
        self._vectors = matrix if self._format.is_identity else None

    def _setup(
        self,
        *,
        name: str,
        bits: int,
        cost: CostModel | None,
        registry: BackendRegistry | None,
        shards: int,
        on_shard_failure: str,
        format: "FragmentFormat",
        cardinality: int,
        dimensionality: int,
        approx: "ApproxConfig | dict | None" = None,
    ) -> None:
        """Option validation + shared state; matrix-independent, so the
        :meth:`open` path can run it without materialising the collection."""
        if shards < 1:
            raise QueryError("shards must be at least 1")
        if on_shard_failure not in self.SHARD_FAILURE_MODES:
            raise QueryError(
                f"on_shard_failure must be one of {self.SHARD_FAILURE_MODES}, "
                f"got {on_shard_failure!r}"
            )
        self._name = name
        self._bits = bits
        self._on_shard_failure = on_shard_failure
        self._shards = int(shards)
        self._format = format
        self._cardinality = cardinality
        self._dimensionality = dimensionality
        self._shard_plan: ShardPlan | None = None
        self._approx_config = ApproxConfig.coerce(approx)
        # Approximate-tier structures: built lazily on first use, or loaded
        # lazily from the sidecar records of an opened v4 manifest.
        self._cluster_plan: ClusterPlan | None = None
        self._hnsw_graph: HNSWGraph | None = None
        self._ivf_partitions: IVFPartitions | None = None
        self._approx_records: dict | None = None
        self._approx_dir: pathlib.Path | None = None
        self._cost = cost if cost is not None else CostModel()
        self._planner = QueryPlanner(self, registry=registry)
        self._input: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        # Lazily materialised physical representations.
        self._row_store: RowStore | None = None
        self._decomposed: DecomposedStore | None = None
        self._compressed: CompressedStore | None = None
        # Caches keyed by the query's metric specification so repeated
        # answers reuse metric instances and (expensive-to-build) searchers.
        self._metrics: dict[tuple, Metric] = {}
        self._searchers: dict[tuple[str, tuple], object] = {}

    @classmethod
    def _from_store(
        cls,
        store: DecomposedStore,
        *,
        name: str,
        bits: int = 8,
        registry: BackendRegistry | None = None,
        shards: int = 1,
        on_shard_failure: str = "fail",
        approx: "ApproxConfig | dict | None" = None,
    ) -> "Index":
        """An index over an already-constructed decomposed store.

        The :meth:`open` path: the loaded (possibly memory-mapped) fragments
        become the index's decomposed store directly, and nothing
        materialises the row-major matrix — which is what lets an index
        larger than RAM open and answer queries.
        """
        index = object.__new__(cls)
        index._setup(
            name=name,
            bits=bits,
            cost=store.cost,
            registry=registry,
            shards=shards,
            on_shard_failure=on_shard_failure,
            format=store.format,
            approx=approx,
            cardinality=store.cardinality,
            dimensionality=store.dimensionality,
        )
        index._decomposed = store
        return index

    # -- construction / persistence ----------------------------------------------

    @classmethod
    def build(cls, vectors: np.ndarray, **opts) -> "Index":
        """Build an index over an in-memory collection (see ``__init__``)."""
        return cls(vectors, **opts)

    @classmethod
    def open(cls, path: str | pathlib.Path, *, verify: str = "none", **opts) -> "Index":
        """Open a collection persisted by :meth:`save`.

        Build options recorded in the manifest (name, compression bits,
        shard-failure policy, fragment format) are restored; explicit keyword
        arguments override them — in particular ``format="float64/mmap"``
        reopens the persisted fragments as read-only memory maps, so the
        index comes up without reading a coefficient and a collection larger
        than RAM pages fragments in as queries touch them.
        ``verify="checksum"`` re-hashes every fragment file against the
        manifest's recorded checksums while loading and raises
        :class:`~repro.errors.CorruptFragmentError` (naming the fragment) on
        any mismatch; for memory-mapped targets the files are verified by
        streaming in chunks, never by faulting the mapping in — see
        :func:`~repro.storage.persistence.load_decomposed`.
        """
        manifest = load_manifest(path)
        saved = dict(manifest.get("index", {}))
        saved["name"] = str(manifest.get("name", pathlib.Path(path).name))
        saved.update(opts)
        cost = saved.pop("cost", None)
        # None lets load_decomposed fall back to the manifest's own format.
        target = saved.pop("format", None)
        store = load_decomposed(path, cost=cost, verify=verify, format=target)
        index = cls._from_store(store, **saved)
        if "sharding" in manifest and "shards" not in opts:
            # Restore the exact persisted shard layout (an explicit shards=
            # override recomputes a fresh balanced plan instead).
            index._shard_plan = ShardPlan.from_manifest(manifest["sharding"])
        if "approx" in manifest:
            # Persisted approximate structures load lazily, like the
            # fragment stores: nothing is read until the first approx query
            # (or explicit cluster_plan / hnsw_graph access) needs them.
            index._approx_records = dict(manifest["approx"])
            index._approx_dir = pathlib.Path(path)
        return index

    def save(self, path: str | pathlib.Path, *, overwrite: bool = False) -> pathlib.Path:
        """Persist the collection plus the facade's build options.

        The manifest records the build options under ``"index"`` (including
        the approximate-tier config) and the shard layout under
        ``"sharding"``, so :meth:`open` restores both the shard count and
        the exact row boundaries.  Approximate structures that exist — built
        in this process, or carried over from the manifest this index was
        opened from — are persisted as manifest-v4 sidecar arrays with the
        same integrity records as the fragments; an index that never touched
        the approximate tier writes no sidecars and its manifest carries no
        ``approx`` section.
        """
        approx_section, sidecar_files = self._approx_save_payload()
        extra_manifest = {
            "index": {
                "bits": self._bits,
                "shards": self._shards,
                "on_shard_failure": self._on_shard_failure,
                "format": self._format.spec,
                "approx": self._approx_config.to_manifest(),
            },
            "sharding": self.shard_plan.to_manifest(),
        }
        if approx_section:
            extra_manifest["approx"] = approx_section
        target = save_decomposed(
            self.decomposed,
            path,
            overwrite=overwrite,
            extra_manifest=extra_manifest,
        )
        write_approx_sidecars(target, sidecar_files)
        return target

    def _approx_save_payload(self) -> tuple[dict, dict]:
        """Manifest section + sidecar payloads of the existing approx structures.

        "Existing" means built in memory or recorded in the manifest this
        index was opened from (the latter are loaded here so a v4 -> v4
        round trip preserves them); structures that were never needed are
        not built just to be saved.
        """
        section: dict = {}
        files: dict = {}
        records = self._approx_records or {}
        if self._cluster_plan is not None or "ivf" in records:
            plan = self.cluster_plan
            arrays, payload = approx_sidecar_records(plan.to_arrays(), structure="ivf")
            section["ivf"] = {
                "seed": plan.seed,
                "iterations": plan.iterations,
                "n_clusters": plan.n_clusters,
                "arrays": arrays,
            }
            files.update(payload)
        if self._hnsw_graph is not None or "hnsw" in records:
            graph = self.hnsw_graph
            arrays, payload = approx_sidecar_records(graph.to_arrays(), structure="hnsw")
            section["hnsw"] = {
                "m": graph.m,
                "ef_construction": graph.ef_construction,
                "seed": graph.seed,
                "entry_point": graph.entry_point,
                "arrays": arrays,
            }
            files.update(payload)
        return section, files

    # -- shape / shared state -----------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """The logical collection matrix, float64 (no cost charged).

        For the identity format this is the ingested matrix itself.  For a
        narrow format it is the quantised collection widened back to float64
        — the values every backend actually answers over — materialised (and
        cached) on first access; the query path of the decomposed backends
        never needs it, so answering from a lazy (mapped) index does not
        trigger it.
        """
        if self._vectors is None:
            if self._input is not None:
                self._vectors = self._format.widen(self._format.quantise(self._input))
            else:
                self._vectors = self.decomposed.matrix
        return self._vectors

    @property
    def name(self) -> str:
        """Collection label."""
        return self._name

    @property
    def format(self) -> "FragmentFormat":
        """The fragment format (dtype x residency) of the physical stores."""
        return self._format

    @property
    def cardinality(self) -> int:
        """Number of vectors."""
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        """Number of dimensions per vector."""
        return self._dimensionality

    def __len__(self) -> int:
        return self.cardinality

    @property
    def cost(self) -> CostModel:
        """The shared cost model every store and backend charges."""
        return self._cost

    @property
    def shards(self) -> int:
        """The row-shard count the index was built with."""
        return self._shards

    @property
    def on_shard_failure(self) -> str:
        """Shard-failure policy handed to the sharded engines."""
        return self._on_shard_failure

    @property
    def shard_plan(self) -> ShardPlan:
        """The row partition of the ``sharded_bond`` backend.

        A balanced plan over :attr:`shards` shards, computed on first use —
        or the exact layout restored from a persisted manifest.
        """
        if self._shard_plan is None:
            self._shard_plan = ShardPlan.balanced(self.cardinality, self._shards)
        return self._shard_plan

    # -- approximate-tier structures ----------------------------------------------

    @property
    def approx_config(self) -> ApproxConfig:
        """The approximate-tier build configuration."""
        return self._approx_config

    @property
    def cluster_plan(self) -> ClusterPlan:
        """The IVF cluster plan: persisted arrays if present, else a seeded build."""
        if self._cluster_plan is None:
            record = (self._approx_records or {}).get("ivf")
            if record is not None:
                assert self._approx_dir is not None
                arrays = {
                    name: load_approx_array(self._approx_dir, array_record)
                    for name, array_record in record["arrays"].items()
                }
                self._cluster_plan = ClusterPlan.from_arrays(
                    arrays, seed=record["seed"], iterations=record["iterations"]
                )
            else:
                config = self._approx_config
                self._cluster_plan = build_cluster_plan(
                    self.vectors,
                    n_clusters=config.resolve_n_clusters(self.cardinality),
                    iterations=config.kmeans_iterations,
                    seed=config.seed,
                )
        return self._cluster_plan

    @property
    def ivf_partitions(self) -> IVFPartitions:
        """The permuted store + zero-copy partition slices of the IVF backend."""
        if self._ivf_partitions is None:
            self._ivf_partitions = IVFPartitions(
                self.decomposed, self.cluster_plan, cost=self._cost, name=self._name
            )
        return self._ivf_partitions

    @property
    def hnsw_graph(self) -> HNSWGraph:
        """The HNSW graph: persisted arrays if present, else a seeded build."""
        if self._hnsw_graph is None:
            record = (self._approx_records or {}).get("hnsw")
            if record is not None:
                assert self._approx_dir is not None
                arrays = {
                    name: load_approx_array(self._approx_dir, array_record)
                    for name, array_record in record["arrays"].items()
                }
                self._hnsw_graph = HNSWGraph.from_arrays(
                    arrays,
                    m=record["m"],
                    ef_construction=record["ef_construction"],
                    seed=record["seed"],
                    entry_point=record["entry_point"],
                )
            else:
                config = self._approx_config
                self._hnsw_graph = build_hnsw_graph(
                    self.vectors,
                    m=config.m,
                    ef_construction=config.ef_construction,
                    seed=config.seed,
                )
        return self._hnsw_graph

    @property
    def planner(self) -> QueryPlanner:
        """The capability-driven planner answering queries."""
        return self._planner

    # -- lazily materialised stores ----------------------------------------------

    @property
    def row_store(self) -> RowStore:
        """The horizontal (NSM) representation, built on first use."""
        if self._row_store is None:
            source = self._input if self._input is not None else self.vectors
            self._row_store = RowStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return self._row_store

    @property
    def decomposed(self) -> DecomposedStore:
        """The vertically decomposed representation, built on first use."""
        if self._decomposed is None:
            source = self._input if self._input is not None else self.vectors
            self._decomposed = DecomposedStore(
                source, cost=self._cost, name=self._name, format=self._format
            )
        return self._decomposed

    @property
    def compressed(self) -> CompressedStore:
        """The 8-bit quantised representation, built on first use."""
        if self._compressed is None:
            self._compressed = CompressedStore(self.decomposed, bits=self._bits)
        return self._compressed

    # -- planning and answering ---------------------------------------------------

    def resolved_metric(self, query: Query) -> Metric:
        """The metric instance for ``query``, cached per specification."""
        key = query.metric_spec_key()
        metric = self._metrics.get(key)
        if metric is None:
            metric = query.resolve_metric()
            self._metrics[key] = metric
        return metric

    def searcher_for(self, backend, query: Query, metric: Metric):
        """The (cached) underlying searcher of ``backend`` for this metric.

        Caching is what keeps expensive backends affordable through the
        facade: the R-tree is bulk-loaded once, the compressed store is
        quantised once, and BOND's reusable scratch buffers persist across
        ``answer()`` calls exactly as they would for a long-lived directly
        constructed searcher.
        """
        key = (backend.name, query.metric_spec_key())
        searcher = self._searchers.get(key)
        if searcher is None:
            searcher = backend.create(self, metric)
            self._searchers[key] = searcher
        return searcher

    def plan(self, query: Query) -> Plan:
        """Plan ``query`` without executing it."""
        return self._planner.plan(query)

    def explain(self, query: Query) -> str:
        """The planning transcript for ``query`` (nothing is executed)."""
        return self._planner.explain(query)

    def answer(
        self, query: Query, *, failover: bool = False
    ) -> SearchResult | BatchSearchResult:
        """Plan and execute ``query`` on the cheapest capable backend.

        Returns a :class:`~repro.core.result.SearchResult` for single-vector
        queries and a :class:`~repro.core.result.BatchSearchResult` for
        batches, exactly as the underlying searcher would.

        With ``failover=True``, an execution-time
        :class:`~repro.errors.BackendError` from the planned backend is not
        final: the planner's :meth:`~repro.api.planner.Plan.failover_chain`
        is walked (next-cheapest eligible *exact* backend first) until one
        answers.  Exact substitutes return answers bitwise identical to the
        planned exact backend — and when an approximate backend fails over,
        the substitute is exact too (recall 1.0 satisfies any approx
        request; the chain never swaps one approximation for another).
        When the whole chain fails the per-backend errors
        are collected into :class:`~repro.errors.FailoverExhausted`; a
        single-entry chain re-raises the original error unchanged.
        """
        plan = self._planner.plan(query)
        if not failover:
            return plan.backend.answer(self, query, plan.metric)
        attempts: list[tuple[str, BackendError]] = []
        chain = plan.failover_chain()
        for backend_name in chain:
            backend = self._planner.registry.get(backend_name)
            try:
                return backend.answer(self, query, plan.metric)
            except BackendError as exc:
                attempts.append((backend_name, exc))
        if len(chain) == 1:
            raise attempts[0][1]
        summary = "; ".join(f"{name}: {error}" for name, error in attempts)
        raise FailoverExhausted(
            f"all {len(attempts)} capable backends failed ({summary})",
            attempts=attempts,
        )
