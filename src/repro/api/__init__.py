"""The unified search API: ``Index`` facade, declarative ``Query`` spec, and
the capability-driven backend planner.

This package is the single entry point the serving layers build on:

* :class:`~repro.api.query.Query` — a frozen, declarative description of one
  k-NN request (vector(s), k, metric, weights/subspace, accuracy mode, batch
  flag, trace request);
* :class:`~repro.api.index.Index` — owns the physical stores (row,
  decomposed, compressed), materialises them lazily, and answers queries;
* :class:`~repro.api.capabilities.Capabilities` /
  :class:`~repro.api.capabilities.BackendRegistry` — each physical searcher
  registers what it can do plus a cost-model hook;
* :class:`~repro.api.planner.QueryPlanner` — picks the cheapest capable
  backend; ``explain()`` renders the decision as a transcript;
* :class:`~repro.api.protocol.Searcher` — the uniform keyword-only protocol
  every underlying searcher satisfies.

See ``docs/API.md`` for the full tour and the old-call -> new-call migration
table.
"""

from repro.api.backends import (
    Backend,
    BondBackend,
    BUILTIN_BACKENDS,
    CompressedBondBackend,
    HNSWBackend,
    IVFBackend,
    PartialAbandonBackend,
    RTreeBackend,
    SequentialScanBackend,
    VAFileBackend,
)
from repro.api.capabilities import (
    BackendRegistry,
    Capabilities,
    CostEstimate,
    DEFAULT_REGISTRY,
    register_backend,
)
from repro.api.index import Index
from repro.api.planner import Plan, PlanCandidate, QueryPlanner
from repro.api.protocol import Searcher
from repro.api.query import METRIC_ALIASES, QUERY_MODES, ApproxParams, Query

__all__ = [
    "ApproxParams",
    "BUILTIN_BACKENDS",
    "Backend",
    "BackendRegistry",
    "BondBackend",
    "Capabilities",
    "CompressedBondBackend",
    "CostEstimate",
    "DEFAULT_REGISTRY",
    "HNSWBackend",
    "IVFBackend",
    "Index",
    "METRIC_ALIASES",
    "Plan",
    "PlanCandidate",
    "PartialAbandonBackend",
    "QUERY_MODES",
    "Query",
    "QueryPlanner",
    "RTreeBackend",
    "Searcher",
    "SequentialScanBackend",
    "VAFileBackend",
    "register_backend",
]
