"""The registered physical backends the planner chooses between.

Each backend adapts one existing searcher to the uniform facade surface:

=================  ==============================================  =========
registry name      underlying searcher                             modes
=================  ==============================================  =========
bond               :class:`repro.core.bond.BondSearcher`           exact
sharded_bond       :class:`repro.core.parallel.ShardedSearcher`    exact+compressed
sequential_scan    :class:`repro.core.sequential.SequentialScan`   exact
partial_abandon    :class:`repro.core.sequential.PartialAbandonScan`  exact
rtree              :class:`repro.baselines.rtree.RTreeIndex`       exact
compressed_bond    :class:`repro.core.compressed.CompressedBondSearcher`  compressed
vafile             :class:`repro.baselines.vafile.VAFile`          compressed
ivf                :class:`repro.approx.ivf.IVFSearcher`           approx
hnsw               :class:`repro.approx.hnsw.HNSWSearcher`         approx
=================  ==============================================  =========

(every exact backend additionally serves ``approx``, where the planner is
free to pick the globally cheapest estimate — an exact answer is simply
recall 1.0.  The converse never holds: ``ivf`` and ``hnsw`` declare
``exact=False`` and are only ever eligible for ``mode="approx"``.)

A backend contributes three things: a :class:`~repro.api.capabilities.Capabilities`
declaration, a ``create()`` hook building the underlying searcher from an
:class:`~repro.api.index.Index`'s lazily materialised stores, and an
``estimate()`` cost-model hook the planner ranks candidates by.  The
estimates are deliberately simple closed forms over collection shape — they
only need to get the *ranking* right (BOND beats a scan, the compressed
filter beats a VA-file scan, an R-tree only wins in low dimensions), which is
exactly the knowledge the paper's measurements establish.

Every ``answer()`` passes through the ``backend.answer`` fault point with the
backend's name and the index's current store *generation* as context, so a
deterministic :class:`~repro.reliability.faults.FaultPlan` can target (say)
"the first sharded answer after the reorganisation committed generation 2"
when rehearsing failover under live updates.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.api.capabilities import Capabilities, CostEstimate, register_backend
from repro.approx.hnsw import HNSWSearcher, effective_ef_search
from repro.approx.ivf import IVFSearcher, effective_nprobe
from repro.baselines.rtree import RTreeIndex
from repro.baselines.vafile import VAFile
from repro.core.bond import BondSearcher
from repro.core.compressed import CompressedBondSearcher
from repro.core.parallel import ShardedSearcher
from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.core.sequential import PartialAbandonScan, SequentialScan
from repro.engine.cost import COMPRESSED_BYTES, DOUBLE_BYTES, OID_BYTES
from repro.metrics.base import Metric
from repro.reliability.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.index import Index
    from repro.api.query import Query

#: Fraction of the full fragment volume BOND is expected to touch before the
#: candidate set collapses (the paper reports ~64 of 166 dimensions
#: contributing, with most candidates pruned inside the first periods).
BOND_PRUNE_FRACTION = 0.45

#: Shared-read discount for natively batched engines: per additional query in
#: a batch, only about half the fragment traffic is new (the full-bitmap
#: phase — where most bytes move — is read once per round for all queries).
BATCH_SHARE_FACTOR = 0.5


def _batch_read_factor(batch_size: int, *, shared: bool) -> float:
    """How many single-query read volumes a batch of ``batch_size`` costs."""
    if batch_size <= 1:
        return 1.0
    if shared:
        return 1.0 + BATCH_SHARE_FACTOR * (batch_size - 1)
    return float(batch_size)


def _effective_dimensions(query: "Query", dimensionality: int) -> int:
    """Dimensions whose fragments the decomposed engines actually touch."""
    if query.subspace is not None:
        return int(query.subspace.size)
    if query.weights is not None:
        return int(np.count_nonzero(query.weights))
    return dimensionality


def _format_note(index: "Index") -> str:
    """Estimate-detail suffix naming a non-default fragment format.

    Exact-fragment estimates scale their ``bytes_read`` by the format's
    coefficient width (a float32 store streams half the bytes of a float64
    one), and ``explain()`` should say so; the default format adds nothing,
    keeping the historical transcripts byte-identical.
    """
    fragment_format = index.format
    if fragment_format.is_identity and not fragment_format.is_mapped:
        return ""
    return (
        f"; {fragment_format.spec} fragments at "
        f"{fragment_format.coefficient_bytes} B/coefficient"
    )


class Backend(abc.ABC):
    """One physical search method, registered with its capabilities."""

    capabilities: Capabilities
    #: Execution-engine label reported by ``explain()``.
    engine: str = "-"

    @property
    def name(self) -> str:
        """Registry name (from the capabilities descriptor)."""
        return self.capabilities.backend

    def rejection_reason(self, query: "Query", metric: Metric) -> str | None:
        """Why this backend cannot serve ``query`` (``None`` when it can)."""
        caps = self.capabilities
        if query.mode not in caps.modes:
            return f"does not serve mode {query.mode!r} (serves {sorted(caps.modes)})"
        if query.is_weighted and not caps.weighted:
            return "weighted queries not supported"
        if query.is_subspace and not caps.subspace:
            return "subspace queries not supported"
        if caps.metrics and metric.name not in caps.metrics:
            return f"metric {metric.name!r} not supported (supports {sorted(caps.metrics)})"
        return None

    @abc.abstractmethod
    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        """Cost-model hook: pre-execution estimate for the whole query."""

    @abc.abstractmethod
    def create(self, index: "Index", metric: Metric):
        """Build the underlying searcher on the index's stores."""

    def answer(
        self, index: "Index", query: "Query", metric: Metric
    ) -> SearchResult | BatchSearchResult:
        """Execute ``query`` through the (cached) underlying searcher.

        Single-vector queries go through ``search`` and batches through
        ``search_batch`` with the *same* arguments a direct call would use,
        which is what keeps facade answers bitwise identical to direct
        searcher calls.
        """
        fault_point(
            "backend.answer", backend=self.name, generation=getattr(index, "generation", 0)
        )
        searcher = index.searcher_for(self, query, metric)
        if query.is_batch:
            return searcher.search_batch(query.query_matrix, query.k)
        trace = PruningTrace() if query.trace else None
        return searcher.search(query.single_vector, query.k, trace=trace)


class BondBackend(Backend):
    """Branch-and-bound over the exact decomposed fragments (Algorithm 2)."""

    capabilities = Capabilities(
        backend="bond",
        description="branch-and-bound over exact decomposed fragments",
        metrics=frozenset(
            {"histogram_intersection", "squared_euclidean", "weighted_squared_euclidean"}
        ),
        modes=frozenset({"exact", "approx"}),
        weighted=True,
        subspace=True,
        batched=True,
        compressed=False,
        exact=True,
    )
    engine = "fused"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n = index.cardinality
        effective = _effective_dimensions(query, index.dimensionality)
        reads = _batch_read_factor(query.batch_size, shared=True)
        bytes_read = BOND_PRUNE_FRACTION * n * effective * index.format.coefficient_bytes * reads
        ops = BOND_PRUNE_FRACTION * n * effective * query.batch_size
        return CostEstimate(
            bytes_read=bytes_read,
            arithmetic_ops=ops,
            detail=f"~{BOND_PRUNE_FRACTION:.0%} of {effective} fragments before pruning converges"
            + _format_note(index),
        )

    def create(self, index: "Index", metric: Metric) -> BondSearcher:
        return BondSearcher(index.decomposed, metric=metric)


class SequentialScanBackend(Backend):
    """Algorithm 1: full scan of the horizontal table (SSH / SSE)."""

    capabilities = Capabilities(
        backend="sequential_scan",
        description="full scan of the horizontal table with a k-best heap",
        metrics=frozenset(),  # metric-generic: anything with score()
        modes=frozenset({"exact", "approx"}),
        weighted=True,
        subspace=True,
        batched=True,
        compressed=False,
        exact=True,
    )
    engine = "scan"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        # One pass serves the whole batch (the scan is query-independent),
        # but every query scores every row.
        return CostEstimate(
            bytes_read=float(n * d * index.format.coefficient_bytes),
            arithmetic_ops=float(n * d * query.batch_size),
            detail="every coefficient of every vector, once per batch" + _format_note(index),
        )

    def create(self, index: "Index", metric: Metric) -> SequentialScan:
        return SequentialScan(index.row_store, metric=metric)


class PartialAbandonBackend(Backend):
    """The footnote-6 scan variant that abandons hopeless vectors early."""

    capabilities = Capabilities(
        backend="partial_abandon",
        description="row scan with per-vector early abandonment (footnote 6)",
        metrics=frozenset({"histogram_intersection", "squared_euclidean"}),
        modes=frozenset({"exact", "approx"}),
        weighted=False,
        subspace=False,
        batched=False,
        compressed=False,
        exact=True,
    )
    engine = "scan+abandon"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        reads = _batch_read_factor(query.batch_size, shared=False)
        # Reads whole rows regardless of abandonment; the extra threshold
        # comparisons make it slower than the plain scan on average, which is
        # exactly the paper's observation.
        return CostEstimate(
            bytes_read=float(n * d * index.format.coefficient_bytes * reads),
            arithmetic_ops=1.1 * n * d * query.batch_size,
            detail="row order cannot see promising dimensions first" + _format_note(index),
        )

    def create(self, index: "Index", metric: Metric) -> PartialAbandonScan:
        return PartialAbandonScan(index.row_store, metric=metric)


class RTreeBackend(Backend):
    """STR bulk-loaded R-tree with best-first k-NN (the Section 2 SAM)."""

    capabilities = Capabilities(
        backend="rtree",
        description="STR-packed R-tree, best-first MINDIST traversal",
        metrics=frozenset({"squared_euclidean"}),
        modes=frozenset({"exact", "approx"}),
        weighted=False,
        subspace=False,
        batched=False,
        compressed=False,
        exact=True,
    )
    engine = "best-first"

    #: Dimensionality at which bounding-box overlap makes the traversal
    #: visit essentially the whole tree (the Section 2 breakdown).
    BREAKDOWN_DIMENSIONALITY = 16

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        visited = min(1.0, d / self.BREAKDOWN_DIMENSIONALITY)
        reads = _batch_read_factor(query.batch_size, shared=False)
        return CostEstimate(
            bytes_read=1.3 * visited * n * d * DOUBLE_BYTES * reads,
            arithmetic_ops=2.0 * visited * n * d * query.batch_size,
            detail=f"expects to visit ~{visited:.0%} of the tree at {d} dimensions",
        )

    def create(self, index: "Index", metric: Metric) -> RTreeIndex:
        return RTreeIndex(index.vectors, cost=index.cost)


class CompressedBondBackend(Backend):
    """BOND filter on 8-bit fragments plus exact refinement (Section 7.4)."""

    capabilities = Capabilities(
        backend="compressed_bond",
        description="branch-and-bound filter on 8-bit fragments + exact refine",
        metrics=frozenset(
            {
                "histogram_intersection",
                "squared_euclidean",
                "euclidean_similarity",
                "weighted_squared_euclidean",
            }
        ),
        modes=frozenset({"compressed", "approx"}),
        weighted=True,
        subspace=True,
        batched=True,
        compressed=True,
        exact=True,
    )
    engine = "fused"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n = index.cardinality
        d = index.dimensionality
        effective = _effective_dimensions(query, d)
        reads = _batch_read_factor(query.batch_size, shared=True)
        survivors = max(8 * query.k, int(0.005 * n))
        filter_bytes = BOND_PRUNE_FRACTION * n * effective * COMPRESSED_BYTES * reads
        refine_bytes = survivors * d * index.format.coefficient_bytes * query.batch_size
        # Interval accumulation maintains a lower AND an upper partial score.
        ops = 2.0 * BOND_PRUNE_FRACTION * n * effective * query.batch_size
        return CostEstimate(
            bytes_read=filter_bytes + refine_bytes,
            arithmetic_ops=ops,
            detail=f"1-byte filter + exact refine of ~{survivors} survivors",
        )

    def create(self, index: "Index", metric: Metric) -> CompressedBondSearcher:
        return CompressedBondSearcher(index.compressed, metric=metric)


class ShardedBondBackend(Backend):
    """Row-sharded parallel BOND: the fused batch engine per shard, merged.

    Serves both the exact and the compressed mode through one registration —
    ``exact`` / ``approx`` queries run
    :class:`~repro.core.parallel.ShardedBondSearcher` over decomposed shard
    slices, ``compressed`` queries run
    :class:`~repro.core.parallel.ShardedCompressedBondSearcher` over
    grid-sharing compressed shard views.  Results are bitwise identical to
    the unsharded engines (deterministic top-k merge), so the planner may
    substitute this backend freely whenever its estimate wins.
    """

    capabilities = Capabilities(
        backend="sharded_bond",
        description="row-sharded parallel BOND (tile rounds per shard, merged top-k)",
        metrics=frozenset(
            {"histogram_intersection", "squared_euclidean", "weighted_squared_euclidean"}
        ),
        modes=frozenset({"exact", "compressed", "approx"}),
        weighted=True,
        subspace=True,
        batched=True,
        compressed=True,
        exact=True,
    )
    engine = "sharded"

    #: Per-shard, per-query coordination charge (round dispatch, pool
    #: hand-off) in arithmetic-op equivalents.  Keeps a one-shard plan from
    #: ever undercutting the unsharded engines: with nothing to parallelise,
    #: the sharded backend estimates strictly worse than ``bond`` /
    #: ``compressed_bond``, which is exactly when it should lose.
    COORDINATION_OPS = 2_000.0

    #: Extra per-shard, per-query charge of the process executor: pickling
    #: the query / result / cost wire across the worker pipe costs real work
    #: a thread hand-off does not.  Keeps the planner honest about
    #: ``shard_executor="process"`` on small collections, where serialisation
    #: rivals the scan itself.
    PROCESS_SCATTER_OPS = 8_000.0

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        """Critical-path estimate: one shard's scan volume plus the merge.

        The shards run concurrently, so the latency-relevant read volume is
        the per-shard share of the unsharded engine's traffic (the paper's
        pruning behaviour is row-local and survives sharding).  On top sit
        the top-k merge (``shards * k`` candidates per query re-ranked at the
        coordinator) and a fixed per-shard coordination charge.
        """
        n = index.cardinality
        d = index.dimensionality
        effective = _effective_dimensions(query, d)
        shards = index.shard_plan.num_shards
        reads = _batch_read_factor(query.batch_size, shared=True)
        if query.mode == "compressed":
            survivors = max(8 * query.k, int(0.005 * n))
            scan_bytes = (
                BOND_PRUNE_FRACTION * n * effective * COMPRESSED_BYTES * reads
                + survivors * d * index.format.coefficient_bytes * query.batch_size
            ) / shards
            scan_ops = 2.0 * BOND_PRUNE_FRACTION * n * effective * query.batch_size / shards
        else:
            scan_bytes = (
                BOND_PRUNE_FRACTION * n * effective * index.format.coefficient_bytes * reads / shards
            )
            scan_ops = BOND_PRUNE_FRACTION * n * effective * query.batch_size / shards
        merge_candidates = float(query.batch_size * shards * query.k)
        merge_bytes = merge_candidates * (DOUBLE_BYTES + OID_BYTES)
        coordination = self.COORDINATION_OPS * shards * query.batch_size
        detail = f"critical path of {shards} parallel shards + top-k merge"
        if getattr(index, "shard_executor", "thread") == "process":
            coordination += self.PROCESS_SCATTER_OPS * shards * query.batch_size
            detail += " (process workers)"
        return CostEstimate(
            bytes_read=scan_bytes + merge_bytes,
            arithmetic_ops=scan_ops + merge_candidates + coordination,
            detail=detail,
        )

    def create(self, index: "Index", metric: Metric) -> ShardedSearcher:
        return ShardedSearcher(
            index,
            metric,
            on_shard_failure=index.on_shard_failure,
            executor=index.shard_executor,
        )

    def answer(
        self, index: "Index", query: "Query", metric: Metric
    ) -> SearchResult | BatchSearchResult:
        """Route the query to the mode-matching sharded engine."""
        fault_point(
            "backend.answer", backend=self.name, generation=getattr(index, "generation", 0)
        )
        searcher = index.searcher_for(self, query, metric)
        engine = searcher.engine_for_mode(query.mode)
        if query.is_batch:
            return engine.search_batch(query.query_matrix, query.k)
        trace = PruningTrace() if query.trace else None
        return engine.search(query.single_vector, query.k, trace=trace)


class VAFileBackend(Backend):
    """Full VA-file approximation scan plus exact refinement."""

    capabilities = Capabilities(
        backend="vafile",
        description="full VA-file approximation scan + exact refine",
        metrics=frozenset(
            {
                "histogram_intersection",
                "squared_euclidean",
                "euclidean_similarity",
                "weighted_squared_euclidean",
            }
        ),
        modes=frozenset({"compressed", "approx"}),
        weighted=True,
        subspace=True,
        batched=True,
        compressed=True,
        exact=True,
    )
    engine = "filter+refine"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        survivors = max(8 * query.k, int(0.005 * n))
        # The approximation pass reads every code regardless of the query, so
        # a batch shares one pass; refinement is per query.
        return CostEstimate(
            bytes_read=float(n * d * COMPRESSED_BYTES)
            + survivors * d * index.format.coefficient_bytes * query.batch_size,
            arithmetic_ops=2.0 * n * d * query.batch_size,
            detail=f"full approximation scan + exact refine of ~{survivors} survivors",
        )

    def create(self, index: "Index", metric: Metric) -> VAFile:
        return VAFile(index.compressed, metric=metric)


class IVFBackend(Backend):
    """Clustered pruning: BOND fused kernels over ``nprobe`` k-means partitions.

    The paper's filter-and-refine idea generalised from dimensions to rows:
    a seeded k-means :class:`~repro.approx.cluster.ClusterPlan` remaps the
    collection into contiguous per-cluster stores, and each probed partition
    runs the unchanged fused BOND engine.  ``exact=False``: the result is
    exact only when every non-empty partition was probed (the searcher flags
    that case itself).
    """

    capabilities = Capabilities(
        backend="ivf",
        description="seeded k-means clustered pruning, fused BOND per partition",
        metrics=frozenset({"squared_euclidean"}),
        modes=frozenset({"approx"}),
        weighted=False,
        subspace=False,
        batched=True,
        compressed=False,
        exact=False,
    )
    engine = "ivf+fused"

    @staticmethod
    def _knobs(index: "Index", query: "Query") -> tuple[int, int]:
        """Resolve ``(nprobe, n_clusters)`` from the query and build config."""
        config = index.approx_config
        n_clusters = config.resolve_n_clusters(index.cardinality)
        params = query.approx_params
        nprobe = effective_nprobe(
            params.nprobe if params is not None else None,
            params.target_recall if params is not None else None,
            n_clusters=n_clusters,
            default=config.default_nprobe,
        )
        return nprobe, n_clusters

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        nprobe, n_clusters = self._knobs(index, query)
        fraction = nprobe / n_clusters
        reads = _batch_read_factor(query.batch_size, shared=True)
        # Centroid scan (once per batch) + the probed share of the fused
        # BOND traffic; pruning behaviour inside a partition matches the
        # unsharded engine's.
        centroid_bytes = float(n_clusters * d * DOUBLE_BYTES)
        scan_bytes = fraction * BOND_PRUNE_FRACTION * n * d * index.format.coefficient_bytes * reads
        ops = (
            2.0 * n_clusters * d * query.batch_size
            + fraction * BOND_PRUNE_FRACTION * n * d * query.batch_size
        )
        return CostEstimate(
            bytes_read=centroid_bytes + scan_bytes,
            arithmetic_ops=ops,
            detail=f"probes {nprobe}/{n_clusters} partitions (~{fraction:.0%} of rows)"
            + _format_note(index),
        )

    def create(self, index: "Index", metric: Metric) -> IVFSearcher:
        return IVFSearcher(
            index.ivf_partitions,
            metric=metric,
            default_nprobe=index.approx_config.default_nprobe,
        )

    def answer(
        self, index: "Index", query: "Query", metric: Metric
    ) -> SearchResult | BatchSearchResult:
        """Execute with the query's ``approx_params`` knobs threaded through."""
        fault_point(
            "backend.answer", backend=self.name, generation=getattr(index, "generation", 0)
        )
        searcher = index.searcher_for(self, query, metric)
        params = query.approx_params
        nprobe = params.nprobe if params is not None else None
        target_recall = params.target_recall if params is not None else None
        if query.is_batch:
            return searcher.search_batch(
                query.query_matrix, query.k, nprobe=nprobe, target_recall=target_recall
            )
        trace = PruningTrace() if query.trace else None
        return searcher.search(
            query.single_vector,
            query.k,
            nprobe=nprobe,
            target_recall=target_recall,
            trace=trace,
        )


class HNSWBackend(Backend):
    """Hierarchical navigable small-world graph with an ``ef_search`` beam.

    Greedy descent through the upper layers, then a beam of width
    ``ef_search`` on layer 0; wider beams evaluate more distances and reach
    higher recall.  ``exact=False``: only the exhaustive fallback
    (``ef_search >= cardinality``) is flagged exact.
    """

    capabilities = Capabilities(
        backend="hnsw",
        description="navigable small-world graph, ef_search-wide beam on layer 0",
        metrics=frozenset({"squared_euclidean"}),
        modes=frozenset({"approx"}),
        weighted=False,
        subspace=False,
        batched=True,
        compressed=False,
        exact=False,
    )
    engine = "graph-beam"

    def estimate(self, index: "Index", query: "Query", metric: Metric) -> CostEstimate:
        n, d = index.cardinality, index.dimensionality
        config = index.approx_config
        params = query.approx_params
        ef = effective_ef_search(
            params.ef_search if params is not None else None,
            params.target_recall if params is not None else None,
            k=query.k,
            cardinality=n,
            default=config.default_ef_search,
        )
        if ef >= n:
            # Exhaustive fallback: one full scan per query.
            return CostEstimate(
                bytes_read=float(n * d * DOUBLE_BYTES * query.batch_size),
                arithmetic_ops=2.0 * n * d * query.batch_size,
                detail=f"ef_search={ef} >= {n} rows: exhaustive fallback",
            )
        # Beam search evaluates ~ef_search * log2(N) candidates per query,
        # each a random row access of d doubles.
        evaluations = ef * max(1.0, np.log2(max(n, 2.0)))
        return CostEstimate(
            bytes_read=evaluations * d * DOUBLE_BYTES * query.batch_size,
            arithmetic_ops=2.0 * evaluations * d * query.batch_size,
            detail=f"~{evaluations:.0f} distance evaluations at ef_search={ef}",
        )

    def create(self, index: "Index", metric: Metric) -> HNSWSearcher:
        return HNSWSearcher(
            index.hnsw_graph,
            index.vectors,
            metric=metric,
            cost=index.cost,
            default_ef_search=index.approx_config.default_ef_search,
        )

    def answer(
        self, index: "Index", query: "Query", metric: Metric
    ) -> SearchResult | BatchSearchResult:
        """Execute with the query's ``approx_params`` knobs threaded through."""
        fault_point(
            "backend.answer", backend=self.name, generation=getattr(index, "generation", 0)
        )
        searcher = index.searcher_for(self, query, metric)
        params = query.approx_params
        ef_search = params.ef_search if params is not None else None
        target_recall = params.target_recall if params is not None else None
        if query.is_batch:
            return searcher.search_batch(
                query.query_matrix, query.k, ef_search=ef_search, target_recall=target_recall
            )
        trace = PruningTrace() if query.trace else None
        return searcher.search(
            query.single_vector,
            query.k,
            ef_search=ef_search,
            target_recall=target_recall,
            trace=trace,
        )


#: The built-in backends, in planner tie-break order (the paper's preferred
#: methods first).
BUILTIN_BACKENDS = tuple(
    register_backend(backend)
    for backend in (
        BondBackend(),
        CompressedBondBackend(),
        ShardedBondBackend(),
        SequentialScanBackend(),
        VAFileBackend(),
        PartialAbandonBackend(),
        RTreeBackend(),
        IVFBackend(),
        HNSWBackend(),
    )
)
