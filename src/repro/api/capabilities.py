"""Backend capability descriptors and the backend registry.

Every physical searcher the facade can dispatch to registers itself with a
:class:`Capabilities` descriptor saying *what it can do* — which metrics,
whether it handles weighted / subspace queries, whether it has native
(shared-read) batching, whether it runs on compressed fragments, and what
exactness it guarantees.  The :class:`~repro.api.planner.QueryPlanner` never
special-cases a backend: eligibility is decided entirely from these
declarations plus each backend's cost-model hook, so adding a backend (a
sharded engine, an asyncio front end, a genuinely approximate index) is one
``register()`` call away from participating in planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.backends import Backend


@dataclass(frozen=True)
class Capabilities:
    """What one registered backend declares it can answer.

    Attributes
    ----------
    backend:
        Registry name of the backend (``"bond"``, ``"vafile"``, ...).
    description:
        One-line human description used in ``explain()`` transcripts.
    metrics:
        Supported ``Metric.name`` values; an **empty** frozenset means the
        backend is metric-generic (any decomposable metric works).
    modes:
        Query modes (see :data:`repro.api.query.QUERY_MODES`) the backend can
        serve.
    weighted:
        Whether weighted (Definition 3) queries are supported.
    subspace:
        Whether subspace-restricted queries are supported.
    batched:
        Whether ``search_batch`` shares storage reads across the queries of a
        batch (every backend *answers* batches — the protocol is total — but
        only natively batched ones get the shared-read discount in the cost
        model).
    compressed:
        Whether the filter runs on the 8-bit quantised fragments.
    exact:
        Whether returned top-k sets are guaranteed exact.
    """

    backend: str
    description: str
    metrics: frozenset[str]
    modes: frozenset[str]
    weighted: bool = False
    subspace: bool = False
    batched: bool = False
    compressed: bool = False
    exact: bool = True


@dataclass(frozen=True)
class CostEstimate:
    """A backend's pre-execution cost estimate for one query.

    The planner ranks eligible backends by :attr:`score` — estimated bytes
    crossing the storage boundary plus the arithmetic volume expressed in
    byte-equivalents (one double touched per operation), so a backend that
    reads little but computes a lot does not win on bytes alone.
    """

    bytes_read: float
    arithmetic_ops: float = 0.0
    detail: str = ""

    #: Bytes one arithmetic operation is weighted as when ranking backends.
    ARITHMETIC_BYTES: ClassVar[float] = 8.0

    @property
    def score(self) -> float:
        """The scalar the planner minimises."""
        return self.bytes_read + self.ARITHMETIC_BYTES * self.arithmetic_ops

    def summary(self) -> str:
        """Compact rendering for ``explain()`` transcripts."""
        text = f"est {self.bytes_read / 1e6:8.2f} MB read, {self.arithmetic_ops / 1e6:8.2f} Mops"
        if self.detail:
            text += f"  [{self.detail}]"
        return text


class BackendRegistry:
    """Ordered name -> backend mapping the planner consults.

    Registration order is the tie-break order: when two backends produce the
    same cost score, the earlier registration wins, so the default registry
    lists the paper's preferred methods first.
    """

    def __init__(self) -> None:
        self._backends: dict[str, "Backend"] = {}

    def register(self, backend: "Backend") -> "Backend":
        """Add a backend under its capabilities' name (returns it, so the
        call composes as a decorator on backend *instances*)."""
        name = backend.capabilities.backend
        if name in self._backends:
            raise PlanError(f"a backend named {name!r} is already registered")
        self._backends[name] = backend
        return backend

    def get(self, name: str) -> "Backend":
        """Look up one backend by name."""
        try:
            return self._backends[name]
        except KeyError:
            raise PlanError(
                f"no backend named {name!r}; registered: {sorted(self._backends)}"
            ) from None

    def names(self) -> list[str]:
        """Registered backend names, in registration order."""
        return list(self._backends)

    def __iter__(self) -> Iterator["Backend"]:
        return iter(self._backends.values())

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __len__(self) -> int:
        return len(self._backends)


#: The process-wide default registry; populated by :mod:`repro.api.backends`
#: at import time.  Pass a private :class:`BackendRegistry` to
#: :class:`~repro.api.index.Index` to plan against a different backend set
#: (the planner unit tests do exactly that).
DEFAULT_REGISTRY = BackendRegistry()


def register_backend(backend: "Backend") -> "Backend":
    """Register a backend with the process-wide default registry."""
    return DEFAULT_REGISTRY.register(backend)
