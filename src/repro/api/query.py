"""The declarative :class:`Query` specification.

A :class:`Query` says *what* the caller wants — the query vector(s), how many
neighbours, under which metric, over which subspace, at which accuracy — and
nothing about *how* it is answered.  The physical choices (which searcher,
which storage representation, which execution engine) are made by the
:class:`~repro.api.planner.QueryPlanner` from the backends' declared
:class:`~repro.api.capabilities.Capabilities`, in the spirit of the
declarative/physical split of relational query processing.

The dataclass is frozen: a query can be planned, explained and answered any
number of times, cached as a dictionary key-by-identity, and shared between
threads without defensive copies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanSimilarity, SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.weighted import WeightedSquaredEuclidean

#: The accuracy / storage modes a query can request.
#:
#: * ``"exact"``      — answer from the exact (uncompressed) representation;
#: * ``"compressed"`` — filter on the 8-bit quantised fragments, refine the
#:   survivors on the exact vectors (still an exact answer — the interval
#:   bounds make false dismissals impossible);
#: * ``"approx"``     — exactness not required: the approximate tier
#:   (:mod:`repro.approx` — clustered IVF pruning and the HNSW graph) becomes
#:   eligible next to every exact backend, and the planner picks the cheapest
#:   estimate.  :attr:`Query.approx_params` carries the recall/speed knobs.
QUERY_MODES = ("exact", "compressed", "approx")


@dataclass(frozen=True)
class ApproxParams:
    """The recall/speed knobs of a ``mode="approx"`` query.

    All fields are optional: an unset knob falls back to the index's
    :class:`repro.approx.ApproxConfig` default.  Exact backends ignore the
    whole object (their answers are exact regardless); the approximate
    backends honour whichever knob addresses them.

    Attributes
    ----------
    nprobe:
        How many nearest partitions the ``ivf`` backend scans (clamped to the
        cluster count; ``nprobe >= n_clusters`` degenerates to an exact
        exhaustive answer).
    ef_search:
        Beam width of the ``hnsw`` backend's layer-0 search (clamped below by
        ``k``; ``ef_search >= cardinality`` degenerates to an exact scored
        scan).
    target_recall:
        Declarative alternative to the physical knobs: a recall@k floor in
        ``(0, 1]`` that each approximate backend maps to a conservative knob
        setting (``1.0`` forces the exhaustive, exact-equivalent
        configuration).  An explicit physical knob takes precedence for the
        backend it addresses.
    """

    nprobe: int | None = None
    ef_search: int | None = None
    target_recall: float | None = None

    def __post_init__(self) -> None:
        for name in ("nprobe", "ef_search"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise QueryError(f"approx_params.{name} must be an integer, got {value!r}")
            if value < 1:
                raise QueryError(f"approx_params.{name} must be at least 1, got {value}")
            object.__setattr__(self, name, int(value))
        if self.target_recall is not None:
            recall = float(self.target_recall)
            if not np.isfinite(recall) or not (0.0 < recall <= 1.0):
                raise QueryError(
                    f"approx_params.target_recall must lie in (0, 1], got {self.target_recall!r}"
                )
            object.__setattr__(self, "target_recall", recall)

    @classmethod
    def coerce(cls, value: "ApproxParams | dict | None") -> "ApproxParams | None":
        """Validate a user-supplied value (instance, mapping or ``None``).

        Unknown mapping keys are rejected with :class:`QueryError` at the
        facade boundary — a typo like ``n_probe`` must not silently fall back
        to the default knobs.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            known = {field.name for field in dataclasses.fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise QueryError(
                    f"unknown approx_params key(s) {unknown}; known: {sorted(known)}"
                )
            return cls(**value)
        raise QueryError(
            f"approx_params must be an ApproxParams or a mapping of its fields, got {type(value).__name__}"
        )

    def describe(self) -> str:
        """Compact ``knob=value`` summary used by ``Query.describe()``."""
        parts = [
            f"{field.name}={getattr(self, field.name)}"
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        ]
        return ", ".join(parts) if parts else "defaults"

#: Metric aliases accepted by :attr:`Query.metric`.
METRIC_ALIASES: dict[str, type[Metric]] = {
    "histogram": HistogramIntersection,
    "histogram_intersection": HistogramIntersection,
    "euclidean": SquaredEuclidean,
    "squared_euclidean": SquaredEuclidean,
    "euclidean_similarity": EuclideanSimilarity,
}

#: Aliases that resolve to the (weighted) Euclidean family — the only base
#: metrics that compose with ``weights`` / ``subspace`` (Definition 3).
_EUCLIDEAN_ALIASES = frozenset({"euclidean", "squared_euclidean"})


def _metric_base_key(metric: str | Metric | None) -> tuple:
    """Canonical cache key for a metric field value.

    Built-in metric instances key by their configuration rather than object
    identity, so per-request instances collapse onto one cache entry.
    """
    if metric is None or isinstance(metric, str):
        return ("alias", metric)
    if isinstance(metric, WeightedSquaredEuclidean):
        return ("weighted_squared_euclidean", metric.weights.tobytes())
    if isinstance(metric, SquaredEuclidean):
        return ("squared_euclidean", metric.require_unit_box)
    if isinstance(metric, HistogramIntersection):
        return ("histogram_intersection", metric.require_normalized)
    if isinstance(metric, EuclideanSimilarity):
        return ("euclidean_similarity",)
    return ("instance", id(metric))


@dataclass(frozen=True, eq=False)
class Query:
    """One declarative k-NN request.

    Attributes
    ----------
    vectors:
        The query vector (1-D) or a ``(batch, N)`` matrix of query vectors.
    k:
        Number of neighbours per query (clamping to the collection size is
        the backend's job, exactly as in direct searcher calls).
    metric:
        Metric alias (``"histogram"``, ``"euclidean"``,
        ``"euclidean_similarity"``, or the canonical ``metric.name``
        spellings) or a ready :class:`~repro.metrics.base.Metric` instance.
        ``None`` (the default) means histogram intersection — or, when
        ``weights`` / ``subspace`` are set, the weighted squared Euclidean
        metric they imply.
    weights:
        Optional per-dimension weights; selects the weighted squared
        Euclidean metric of Definition 3 (zero-weight fragments are never
        read).  Mutually exclusive with ``subspace``, and only compatible
        with a ``metric`` that is ``None`` or names the Euclidean family —
        an explicitly requested histogram metric cannot be silently
        replaced.
    subspace:
        Optional dimension indices; restricts the (squared Euclidean)
        distance to those dimensions (Section 8.1).  Mutually exclusive with
        ``weights``.
    mode:
        Accuracy / storage mode, one of :data:`QUERY_MODES`.
    approx_params:
        Optional :class:`ApproxParams` (or a mapping of its fields) tuning
        the approximate tier; only legal with ``mode="approx"``.  Exact
        backends must ignore it, approximate backends must honour it;
        unknown mapping keys raise :class:`~repro.errors.QueryError` here,
        at the facade boundary.
    batch:
        Explicit batch flag.  ``None`` (default) infers it from the shape of
        ``vectors``; ``True`` with a single vector answers a batch of one.
    trace:
        Request a :class:`~repro.core.result.PruningTrace` on the result of a
        single-vector query (batch results always carry per-query traces
        where the backend records them).
    backend:
        Optional planner hint pinning a specific registered backend by name;
        the backend must still be capable of the query or planning fails.
    normalize_weights:
        Rescale ``weights`` to sum to the dimensionality (the Definition 3
        convention, matching :func:`repro.core.weighted.weighted_search`).
    """

    vectors: np.ndarray
    k: int = 10
    metric: str | Metric | None = None
    weights: np.ndarray | None = None
    subspace: np.ndarray | None = None
    mode: str = "exact"
    approx_params: "ApproxParams | dict | None" = None
    batch: bool | None = None
    trace: bool = False
    backend: str | None = None
    normalize_weights: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        vectors = np.asarray(self.vectors, dtype=np.float64)
        if vectors.ndim not in (1, 2):
            raise QueryError(
                f"query vectors must be 1-D (single) or 2-D (batch), got shape {vectors.shape}"
            )
        if vectors.size == 0:
            raise QueryError("query vectors must not be empty")
        if not np.isfinite(vectors).all():
            # Catch NaN/inf at the facade boundary: a non-finite coefficient
            # poisons every partial score and pruning bound downstream, and
            # the resulting garbage ranking would surface with no hint of the
            # cause.  (NaN comparisons are False, so a NaN query can even
            # "pass" pruning while scoring nothing correctly.)
            bad = int(np.size(vectors) - np.count_nonzero(np.isfinite(vectors)))
            raise QueryError(
                f"query vectors must be finite; found {bad} non-finite "
                "(NaN/inf) coefficient(s)"
            )
        if self.batch is False and vectors.ndim == 2:
            raise QueryError("batch=False conflicts with a 2-D query matrix")
        if self.batch is True and vectors.ndim == 1:
            vectors = vectors[None, :]
        object.__setattr__(self, "vectors", vectors)

        if self.k < 1:
            raise QueryError("k must be at least 1")
        if self.mode not in QUERY_MODES:
            raise QueryError(f"mode must be one of {QUERY_MODES}, got {self.mode!r}")
        if self.approx_params is not None:
            if self.mode != "approx":
                raise QueryError(
                    f"approx_params only apply to mode='approx' queries, got mode={self.mode!r}"
                )
            object.__setattr__(self, "approx_params", ApproxParams.coerce(self.approx_params))
        if self.weights is not None and self.subspace is not None:
            raise QueryError("weights and subspace are mutually exclusive")

        if self.weights is not None:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.ndim != 1 or weights.shape[0] != self.dimensionality:
                raise QueryError(
                    f"weights must be one value per dimension "
                    f"({self.dimensionality}), got shape {weights.shape}"
                )
            object.__setattr__(self, "weights", weights)
        if self.subspace is not None:
            subspace = np.asarray(self.subspace, dtype=np.int64)
            if subspace.ndim != 1 or subspace.size == 0:
                raise QueryError("subspace must be a non-empty 1-D list of dimension indices")
            if subspace.min() < 0 or subspace.max() >= self.dimensionality:
                raise QueryError(
                    f"subspace indices must lie in [0, {self.dimensionality})"
                )
            object.__setattr__(self, "subspace", subspace)
        if (self.weights is not None or self.subspace is not None) and not self._weighted_base_ok():
            raise QueryError(
                "weights / subspace compose with the (squared) Euclidean metric only "
                "(Definition 3); pass a WeightedSquaredEuclidean instance as metric= "
                "for custom setups, without the weights/subspace fields"
            )

    # -- shape --------------------------------------------------------------------

    @property
    def is_batch(self) -> bool:
        """Whether this query answers a batch of vectors."""
        return self.vectors.ndim == 2

    @property
    def batch_size(self) -> int:
        """Number of query vectors (1 for a single query)."""
        return int(self.vectors.shape[0]) if self.is_batch else 1

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the query vector(s)."""
        return int(self.vectors.shape[-1])

    @property
    def query_matrix(self) -> np.ndarray:
        """The vectors as a 2-D matrix (single queries become one row)."""
        return self.vectors if self.is_batch else self.vectors[None, :]

    @property
    def single_vector(self) -> np.ndarray:
        """The single query vector; raises for batch queries."""
        if self.is_batch:
            raise QueryError("this is a batch query; use query_matrix")
        return self.vectors

    # -- metric resolution --------------------------------------------------------

    def _weighted_base_ok(self) -> bool:
        """Whether the declared base metric composes with weights/subspace.

        Weights and subspace resolve to the weighted squared Euclidean metric
        (the Definition 3 convention of ``weighted_search``), so the metric
        field must be unset or name the Euclidean family — an explicitly
        requested histogram metric is rejected rather than silently replaced
        by a distance with opposite score semantics.  Metric *instances* must
        carry their own weights instead.
        """
        if self.metric is None:
            return True
        if isinstance(self.metric, Metric):
            return False
        return self.metric in _EUCLIDEAN_ALIASES

    def resolve_metric(self) -> Metric:
        """Materialise the metric instance this query describes.

        Weighted and subspace queries resolve to the weighted squared
        Euclidean metric exactly the way
        :func:`repro.core.weighted.weighted_search` and
        :func:`repro.core.subspace.subspace_search` build it, so facade
        answers stay bitwise identical to the direct helpers.
        """
        if self.weights is not None:
            return WeightedSquaredEuclidean(
                self.weights, normalize_to_dimensionality=self.normalize_weights
            )
        if self.subspace is not None:
            return WeightedSquaredEuclidean.for_subspace(self.dimensionality, self.subspace)
        if self.metric is None:
            return HistogramIntersection()
        if isinstance(self.metric, Metric):
            return self.metric
        try:
            factory = METRIC_ALIASES[self.metric]
        except KeyError:
            raise QueryError(
                f"unknown metric alias {self.metric!r}; known: {sorted(set(METRIC_ALIASES))}"
            ) from None
        return factory()

    def metric_spec_key(self) -> tuple:
        """A hashable key identifying the resolved metric configuration.

        The :class:`~repro.api.index.Index` uses it to cache resolved metrics
        (and through them, backend searchers — including the bulk-loaded
        R-tree) across repeated ``answer()`` calls with equal specifications.
        Instances of the built-in metric classes are keyed by their canonical
        parameters, so a long-lived serving index answering fresh
        ``Query(v, metric=SquaredEuclidean())`` objects per request hits the
        same cache entry every time.  Unknown custom ``Metric`` subclasses
        fall back to identity keying (reuse the instance across queries to
        reuse its searchers).
        """
        base = _metric_base_key(self.metric)
        weights_key = self.weights.tobytes() if self.weights is not None else None
        subspace_key = self.subspace.tobytes() if self.subspace is not None else None
        return (base, weights_key, subspace_key, self.normalize_weights)

    # -- capability-facing flags --------------------------------------------------

    @property
    def is_weighted(self) -> bool:
        """Whether the query needs weighted-metric support."""
        return self.weights is not None or isinstance(self.metric, WeightedSquaredEuclidean)

    @property
    def is_subspace(self) -> bool:
        """Whether the query restricts the search to a dimensional subspace."""
        return self.subspace is not None

    def describe(self) -> str:
        """One-line summary used by ``explain()`` transcripts."""
        if isinstance(self.metric, Metric):
            metric = self.metric.name
        elif self.metric is not None:
            metric = self.metric
        elif self.weights is not None or self.subspace is not None:
            metric = "weighted_squared_euclidean"
        else:
            metric = "histogram_intersection"
        parts = [
            f"k={self.k}",
            f"metric={metric}",
            f"mode={self.mode}",
            f"batch={self.batch_size if self.is_batch else 'no'}",
        ]
        if self.weights is not None:
            parts.append(f"weighted({int(np.count_nonzero(self.weights))} non-zero)")
        if self.subspace is not None:
            parts.append(f"subspace({self.subspace.size} dims)")
        if self.approx_params is not None:
            parts.append(f"approx({self.approx_params.describe()})")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.trace:
            parts.append("trace")
        return "Query(" + ", ".join(parts) + ")"
