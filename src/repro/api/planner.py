"""Capability-driven query planning.

The :class:`QueryPlanner` turns a declarative :class:`~repro.api.query.Query`
into a physical :class:`Plan`: it walks the backend registry, rejects the
backends whose :class:`~repro.api.capabilities.Capabilities` cannot serve the
query (wrong mode, unsupported metric, no weighted support, ...), asks every
eligible backend's cost-model hook for an estimate, and picks the cheapest.
``explain()`` renders the whole decision — every candidate with its estimate
or rejection reason — as a transcript, so "why did my query run on that
backend?" is always one call away.

When the index carries live updates (see :meth:`repro.api.Index.insert`),
every eligible estimate gains the same additive surcharge for the tail
overlay — the live tail is scanned and scored on top of whichever backend
answers, so the extra work is backend-independent and the ranking between
backends is unchanged; the surcharge keeps the absolute estimates honest
and is called out in the ``explain()`` transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.capabilities import BackendRegistry, CostEstimate, DEFAULT_REGISTRY
from repro.api.query import Query
from repro.errors import PlanError, QueryError
from repro.metrics.base import Metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import Backend
    from repro.api.index import Index


@dataclass(frozen=True)
class PlanCandidate:
    """One backend's fate during planning: an estimate or a rejection."""

    backend: str
    estimate: CostEstimate | None
    rejection: str | None
    #: Whether the backend guarantees exact answers (from its capabilities);
    #: failover only substitutes exact backends, never one approximation for
    #: another.
    exact: bool = True

    @property
    def eligible(self) -> bool:
        """Whether the backend could have served the query."""
        return self.rejection is None


@dataclass(frozen=True)
class Plan:
    """The physical answer strategy chosen for one query."""

    query: Query
    metric: Metric
    backend: "Backend"
    estimate: CostEstimate
    candidates: tuple[PlanCandidate, ...]

    @property
    def backend_name(self) -> str:
        """Registry name of the chosen backend."""
        return self.backend.name

    @property
    def engine(self) -> str:
        """Execution-engine label of the chosen backend."""
        return self.backend.engine

    def failover_chain(self) -> tuple[str, ...]:
        """Backend names to try in order when execution (not planning) fails.

        The chosen backend first, then every other *eligible and exact*
        candidate in ascending estimated-cost order (the sort is stable, so
        equal estimates keep their registration-order tie-break).  Only
        exact backends are substituted: an exact answer satisfies any mode
        (including ``approx`` — it is simply recall 1.0), but swapping one
        approximate backend for another would silently change the
        recall/knob semantics the caller asked for.  A query that pins
        ``query.backend`` gets a single-entry chain — an explicit pin means
        "this backend or nothing", never a silent substitution.
        """
        if self.query.backend is not None:
            return (self.backend_name,)
        eligible = sorted(
            (
                candidate
                for candidate in self.candidates
                if candidate.eligible and candidate.exact
            ),
            key=lambda candidate: candidate.estimate.score,
        )
        rest = [c.backend for c in eligible if c.backend != self.backend_name]
        return (self.backend_name, *rest)

    def describe(self) -> str:
        """The ``explain()`` transcript: query, candidates, decision."""
        lines = [self.query.describe(), "candidates:"]
        for candidate in self.candidates:
            if candidate.eligible:
                assert candidate.estimate is not None
                status = candidate.estimate.summary()
                marker = "->" if candidate.backend == self.backend_name else "  "
            else:
                status = f"rejected: {candidate.rejection}"
                marker = "  "
            lines.append(f"  {marker} {candidate.backend:<16} {status}")
        lines.append(
            f"chosen: {self.backend_name} (engine={self.engine}), "
            f"{self.estimate.summary()}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class QueryPlanner:
    """Chooses the cheapest capable backend for each query.

    Parameters
    ----------
    index:
        The index whose shape (cardinality, dimensionality) the cost
        estimates are computed over.
    registry:
        Backend registry to plan against; defaults to the process-wide
        registry holding the built-in backends.
    """

    def __init__(self, index: "Index", *, registry: BackendRegistry | None = None) -> None:
        self._index = index
        self._registry = registry if registry is not None else DEFAULT_REGISTRY

    @property
    def registry(self) -> BackendRegistry:
        """The backend registry consulted during planning."""
        return self._registry

    def plan(self, query: Query) -> Plan:
        """Resolve the metric, score every capable backend, pick the cheapest.

        Raises
        ------
        QueryError
            If the query's dimensionality does not match the index.
        PlanError
            If no registered backend can serve the query (the message lists
            every backend's rejection reason), or if a ``query.backend`` hint
            names a backend that cannot serve it.
        """
        if query.dimensionality != self._index.dimensionality:
            raise QueryError(
                f"query has {query.dimensionality} dimensions, "
                f"the index has {self._index.dimensionality}"
            )
        metric = self._index.resolved_metric(query)
        surcharge = self._tail_surcharge(query)

        candidates: list[PlanCandidate] = []
        best: tuple[float, "Backend", CostEstimate] | None = None
        for backend in self._registry:
            exact = backend.capabilities.exact
            rejection = backend.rejection_reason(query, metric)
            if rejection is not None:
                candidates.append(PlanCandidate(backend.name, None, rejection, exact))
                continue
            estimate = backend.estimate(self._index, query, metric)
            if surcharge is not None:
                estimate = self._apply_surcharge(estimate, surcharge)
            candidates.append(PlanCandidate(backend.name, estimate, None, exact))
            if query.backend is not None and backend.name != query.backend:
                continue
            if best is None or estimate.score < best[0]:
                best = (estimate.score, backend, estimate)

        if query.backend is not None:
            if query.backend not in self._registry:
                raise PlanError(
                    f"query pins unknown backend {query.backend!r}; "
                    f"registered: {self._registry.names()}"
                )
            pinned = next(c for c in candidates if c.backend == query.backend)
            if not pinned.eligible:
                raise PlanError(
                    f"query pins backend {query.backend!r}, which cannot serve it: "
                    f"{pinned.rejection}"
                )

        if best is None:
            reasons = "; ".join(
                f"{candidate.backend}: {candidate.rejection}" for candidate in candidates
            )
            raise PlanError(f"no registered backend can serve {query.describe()} ({reasons})")
        _, backend, estimate = best
        return Plan(
            query=query,
            metric=metric,
            backend=backend,
            estimate=estimate,
            candidates=tuple(candidates),
        )

    def _tail_surcharge(self, query: Query) -> CostEstimate | None:
        """Backend-independent extra cost of the live-update overlay, or None.

        An update-free index (and any index-like object without mutability
        counters) plans exactly as before.  With live updates, every answer
        additionally scans and scores the tail rows and filters the deleted
        base OIDs out of the (inflated) base top-k — identical work whatever
        backend produced the base answer, hence one uniform additive term.
        """
        tail_rows = int(getattr(self._index, "tail_rows", 0) or 0)
        deleted = int(getattr(self._index, "deleted_count", 0) or 0)
        if not tail_rows and not deleted:
            return None
        queries = max(1, int(query.query_matrix.shape[0]))
        dims = self._index.dimensionality
        return CostEstimate(
            bytes_read=float(tail_rows * dims * 8),
            arithmetic_ops=float(queries * tail_rows * dims),
            detail=f"+ live tail overlay ({tail_rows} rows, {deleted} deletes)",
        )

    @staticmethod
    def _apply_surcharge(estimate: CostEstimate, surcharge: CostEstimate) -> CostEstimate:
        detail = f"{estimate.detail} {surcharge.detail}".strip() if estimate.detail else surcharge.detail
        return CostEstimate(
            bytes_read=estimate.bytes_read + surcharge.bytes_read,
            arithmetic_ops=estimate.arithmetic_ops + surcharge.arithmetic_ops,
            detail=detail,
        )

    def explain(self, query: Query) -> str:
        """The planning transcript for ``query`` (see :meth:`Plan.describe`)."""
        return self.plan(query).describe()
