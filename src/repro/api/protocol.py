"""The uniform, keyword-only :class:`Searcher` protocol.

Every single-feature searcher in the package — BOND, the compressed filter,
the sequential scans, the VA-file and the R-tree — satisfies this structural
protocol: a ``search`` taking the vector, ``k`` and a keyword-only optional
``trace``, and a ``search_batch`` answering a query matrix.  The facade's
backends rely on exactly this surface, and future layers (parallel shards,
the asyncio serving front end) should target it rather than any concrete
searcher class.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.result import BatchSearchResult, PruningTrace, SearchResult


@runtime_checkable
class Searcher(Protocol):
    """Structural protocol of every single-feature k-NN searcher."""

    def search(
        self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> SearchResult:
        """Answer one query vector."""
        ...  # pragma: no cover - protocol body

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a ``(batch, N)`` matrix of query vectors."""
        ...  # pragma: no cover - protocol body
