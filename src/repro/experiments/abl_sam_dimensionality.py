"""Motivation ablation — the R-tree breakdown with growing dimensionality.

Section 2 recalls why space-partitioning indexes are not the answer in high
dimensions: their bounding boxes overlap so much that a k-NN search touches a
large fraction of the data, at which point a sequential scan (and BOND) win.
This ablation sweeps the dimensionality of a clustered collection and
measures what fraction of the collection the R-tree's best-first search has
to fetch, next to BOND's work ratio against a scan.
"""

from __future__ import annotations

from repro.baselines.rtree import RTreeIndex
from repro.bounds.euclidean import EvBound
from repro.core.bond import BondSearcher
from repro.core.sequential import SequentialScan
from repro.datasets.clustered import ClusteredConfig, make_clustered
from repro.experiments.base import ExperimentReport, ExperimentScale, geometric_mean, resolve_scale
from repro.metrics.euclidean import SquaredEuclidean
from repro.storage.decomposed import DecomposedStore
from repro.storage.rowstore import RowStore
from repro.workload.queries import sample_queries


def run(
    scale: str | ExperimentScale = "small",
    *,
    dimensionalities: tuple[int, ...] = (4, 8, 16, 32, 64),
    k: int = 10,
) -> ExperimentReport:
    """Regenerate the SAM-breakdown ablation."""
    scale = resolve_scale(scale)
    metric = SquaredEuclidean()
    report = ExperimentReport(
        experiment_id="abl-sam",
        title="R-tree breakdown with dimensionality vs scan and BOND",
    )
    cardinality = min(scale.clustered_cardinality, 8_000)

    for dimensionality in dimensionalities:
        collection = make_clustered(
            ClusteredConfig(cardinality=cardinality, dimensionality=dimensionality, skew=1.0, seed=3)
        )
        workload = sample_queries(collection, max(4, scale.num_queries // 3), seed=9)
        rtree = RTreeIndex(collection)
        store = DecomposedStore(collection)
        row_store = RowStore(collection)
        bond = BondSearcher(store, metric=metric, bound=EvBound())
        scan = SequentialScan(row_store, metric=metric)

        rtree_bytes, scan_bytes, bond_bytes = [], [], []
        for query in workload:
            rtree_bytes.append(float(rtree.search(query, k).cost.bytes_read))
            scan_bytes.append(float(scan.search(query, k).cost.bytes_read))
            bond_bytes.append(float(bond.search(query, k).cost.bytes_read))
        report.add_row(
            dimensionality=dimensionality,
            rtree_bytes_fraction_of_scan=geometric_mean(
                [rtree / scan for rtree, scan in zip(rtree_bytes, scan_bytes)]
            ),
            bond_bytes_fraction_of_scan=geometric_mean(
                [bond / scan for bond, scan in zip(bond_bytes, scan_bytes)]
            ),
        )

    report.add_note(
        "the R-tree's advantage erodes as dimensionality grows (fraction -> 1 and beyond), "
        "while BOND's fraction stays below 1 — the motivation of Section 2"
    )
    report.add_note(f"scale={scale.name}, |X|={cardinality}, k={k}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
