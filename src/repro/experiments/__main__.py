"""Command-line runner for the experiment harness.

Regenerate individual paper artefacts (or all of them) without going through
pytest::

    python -m repro.experiments --list
    python -m repro.experiments fig4 tab3
    python -m repro.experiments --all --scale medium
    python -m repro.experiments tab3 --scale paper --output results/

Each experiment prints its table; ``--output`` additionally writes one text
file per experiment id.

``--explain`` goes through the unified :mod:`repro.api` facade instead of
running experiments: it builds an :class:`~repro.api.Index` over a Corel-like
collection at the chosen scale and prints the planner transcript for the
canonical query shapes (exact, compressed, weighted, subspace, batched) —
the quickest way to see which backend would answer what, and why.
"""

from __future__ import annotations

import argparse
import importlib
import pathlib
import sys

from repro.experiments.base import ExperimentReport

#: Experiment id -> module implementing it (all expose ``run(scale)``).
EXPERIMENT_MODULES: dict[str, str] = {
    "fig2": "repro.experiments.fig2_dataset_stats",
    "fig4": "repro.experiments.fig4_pruning_hist",
    "fig5": "repro.experiments.fig5_pruning_eucl",
    "fig6": "repro.experiments.fig6_effect_of_k",
    "fig7": "repro.experiments.fig7_orderings",
    "fig8": "repro.experiments.fig8_dimensionality",
    "tab3": "repro.experiments.tab3_response_time",
    "fig9": "repro.experiments.fig9_compression",
    "tab4": "repro.experiments.tab4_vafile",
    "fig10": "repro.experiments.fig10_data_skew",
    "fig11": "repro.experiments.fig11_weight_skew",
    "sec82": "repro.experiments.sec82_multifeature",
    "abl-sam": "repro.experiments.abl_sam_dimensionality",
    "abl-m": "repro.experiments.abl_pruning_period",
}


def run_experiment(experiment_id: str, scale: str) -> ExperimentReport:
    """Import and run one experiment by id."""
    module = importlib.import_module(EXPERIMENT_MODULES[experiment_id])
    return module.run(scale)


def explain_plans(scale: str) -> str:
    """Planner transcripts for the canonical query shapes at ``scale``.

    Builds an :class:`~repro.api.Index` over a Corel-like collection of the
    scale's cardinality and asks the capability-driven planner to explain —
    without executing anything — how it would answer each representative
    query of the paper's workloads.
    """
    import numpy as np

    from repro.api import Index, Query
    from repro.datasets.corel import make_corel_like
    from repro.datasets.weights import make_skewed_weights
    from repro.experiments.base import resolve_scale

    resolved = resolve_scale(scale)
    histograms = make_corel_like(
        cardinality=resolved.corel_cardinality, dimensionality=166, seed=7
    )
    index = Index.build(histograms, name=f"corel-{resolved.name}")
    query = histograms[0]
    weights = make_skewed_weights(166, heavy_fraction=0.1, heavy_mass=0.9, seed=5)
    shapes = [
        ("exact 10-NN (histogram intersection)", Query(query, k=10, metric="histogram")),
        ("compressed 10-NN (8-bit filter + refine)", Query(query, k=10, mode="compressed")),
        ("exact 10-NN (squared Euclidean)", Query(query, k=10, metric="euclidean")),
        ("weighted 10-NN (skewed weights)", Query(query, k=10, weights=weights)),
        ("subspace 10-NN (12 dimensions)", Query(query, k=10, subspace=np.arange(12))),
        (
            f"batched exact 10-NN ({resolved.num_queries} queries)",
            Query(histograms[: resolved.num_queries], k=10, metric="histogram"),
        ),
    ]
    sections = [
        f"index: {index.cardinality} x {index.dimensionality} ({resolved.name} scale)"
    ]
    for label, shape in shapes:
        sections.append(f"--- {label}\n{index.explain(shape)}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list the available experiment ids")
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the query planner's transcript for the canonical query shapes",
    )
    parser.add_argument(
        "--scale", default="small", help="small (default), medium, or paper collection sizes"
    )
    parser.add_argument("--output", default=None, help="directory to write one .txt report per experiment")
    arguments = parser.parse_args(argv)

    if arguments.list:
        for experiment_id, module in EXPERIMENT_MODULES.items():
            print(f"{experiment_id:8s} {module}")
        return 0

    if arguments.explain:
        print(explain_plans(arguments.scale))
        return 0

    chosen = list(EXPERIMENT_MODULES) if arguments.all else arguments.experiments
    if not chosen:
        parser.error("give one or more experiment ids, or --all / --list / --explain")
    unknown = [experiment_id for experiment_id in chosen if experiment_id not in EXPERIMENT_MODULES]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)} (use --list)")

    output_directory = pathlib.Path(arguments.output) if arguments.output else None
    if output_directory is not None:
        output_directory.mkdir(parents=True, exist_ok=True)

    for experiment_id in chosen:
        report = run_experiment(experiment_id, arguments.scale)
        text = report.format_table()
        print(text)
        print()
        if output_directory is not None:
            (output_directory / f"{experiment_id}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
