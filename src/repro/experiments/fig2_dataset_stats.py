"""Figure 2 — statistics of the (Corel-like) histogram collection.

The paper's Figure 2 has two plots: the mean value of every histogram bin
across the collection, and the average per-histogram value distribution when
each histogram's values are sorted in decreasing order (a Zipfian curve).
The report reproduces the sorted-value profile at a handful of ranks plus the
scalar summaries, which is what downstream experiments (the decreasing-q
ordering) actually rely on.
"""

from __future__ import annotations

from repro.datasets.statistics import describe_dataset
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.workloads import corel_collection


def run(scale: str | ExperimentScale = "small", *, dimensionality: int = 166) -> ExperimentReport:
    """Regenerate the Figure 2 statistics for the Corel-like collection."""
    scale = resolve_scale(scale)
    collection = corel_collection(scale, dimensionality=dimensionality)
    statistics = describe_dataset(collection)

    report = ExperimentReport(
        experiment_id="fig2",
        title="Dataset statistics (Corel-like HSV histograms)",
    )
    profile = statistics.sorted_value_profile
    ranks = [1, 2, 4, 8, 16, 32, 64, 128]
    for rank in ranks:
        if rank <= profile.shape[0]:
            report.add_row(statistic=f"average value at rank {rank}", value=float(profile[rank - 1]))
    for label, value in statistics.summary_rows():
        report.add_row(statistic=label, value=value)
    report.add_note(
        "paper: per-histogram values follow a Zipfian distribution; the heavy bins differ per image"
    )
    report.add_note(f"scale={scale.name} ({statistics.cardinality} histograms)")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
