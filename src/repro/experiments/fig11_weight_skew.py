"""Figure 11 — effect of weight skew on weighted-Euclidean pruning.

The worst case for Ev is the theta = 0 clustered dataset (uniform cluster
centres).  Weighted queries put skew back: Figure 11 sweeps increasingly
skewed weight vectors over that dataset and finds that pruning only improves
substantially once roughly 10 % of the dimensions carry more than 90 % of the
total weight — which the paper argues is common in practice (relevance
feedback, user-specified importance).
"""

from __future__ import annotations

from repro.bounds.weighted import WeightedEuclideanBound
from repro.core.planner import FixedPeriodSchedule
from repro.datasets.weights import weight_skew_sweep
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import clustered_setup
from repro.metrics.weighted import WeightedSquaredEuclidean


def run(scale: str | ExperimentScale = "small", *, k: int = 10, period: int = 8) -> ExperimentReport:
    """Regenerate the Figure 11 weight-skew sweep (on the theta = 0 dataset)."""
    scale = resolve_scale(scale)
    _, store, _, workload = clustered_setup(scale, skew=0.0)
    schedule = FixedPeriodSchedule(period)

    configurations = weight_skew_sweep(store.dimensionality)
    collectors = {}
    for label, weights in configurations.items():
        metric = WeightedSquaredEuclidean(weights, normalize_to_dimensionality=True)
        collectors[label] = collect_pruning_curves(
            store, metric, WeightedEuclideanBound(), workload, k=k, schedule=schedule
        )

    report = ExperimentReport(
        experiment_id="fig11", title="Effect of weight skew on weighted-Euclidean pruning"
    )
    reference = next(iter(collectors.values()))
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for label, collector in collectors.items():
            row[f"pruned_avg[{label}]"] = float(collector.pruned_vectors()["average"][index])
        report.add_row(**row)

    halfway = len(grid) // 2
    at_halfway = {
        label: float(collector.pruned_vectors()["average"][halfway])
        for label, collector in collectors.items()
    }
    most_skewed = max(at_halfway, key=at_halfway.get)
    report.add_note(
        f"earliest pruning (at the halfway point) with the most skewed weights ({most_skewed}); "
        "paper: efficiency improves only when ~10% of the dimensions get >90% of the weight"
    )
    report.add_note(f"scale={scale.name}, |X|={store.cardinality}, k={k}, m={period}, theta=0")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
