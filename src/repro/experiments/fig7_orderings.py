"""Figure 7 — effect of the dimension processing order on Hq pruning.

Processing dimensions in decreasing query value prunes much earlier than a
random order, which in turn beats the increasing order (the worst case).  The
flexibility to pick the order per query — without any access-cost penalty —
is an advantage of the decomposed layout over static index structures.
"""

from __future__ import annotations

from repro.bounds.histogram import HqBound
from repro.core.ordering import (
    DecreasingQueryOrdering,
    DimensionOrdering,
    IncreasingQueryOrdering,
    RandomOrdering,
)
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import corel_setup
from repro.metrics.histogram import HistogramIntersection


def run(scale: str | ExperimentScale = "small", *, k: int = 10, period: int = 8) -> ExperimentReport:
    """Regenerate the Figure 7 ordering comparison."""
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    metric = HistogramIntersection()
    schedule = FixedPeriodSchedule(period)

    orderings: dict[str, DimensionOrdering] = {
        "decreasing": DecreasingQueryOrdering(),
        "random": RandomOrdering(seed=3),
        "increasing": IncreasingQueryOrdering(),
    }
    collectors = {
        name: collect_pruning_curves(
            store, metric, HqBound(), workload, k=k, ordering=ordering, schedule=schedule
        )
        for name, ordering in orderings.items()
    }

    report = ExperimentReport(experiment_id="fig7", title="Effect of the dimension ordering (Hq)")
    reference = collectors["decreasing"]
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for name, collector in collectors.items():
            row[f"pruned_avg_{name}"] = float(collector.pruned_vectors()["average"][index])
        report.add_row(**row)

    halfway = len(grid) // 2
    ranking = sorted(
        collectors, key=lambda name: -float(collectors[name].pruned_vectors()["average"][halfway])
    )
    report.add_note(f"ordering by pruning at the halfway point: {' > '.join(ranking)} (paper: decreasing > random > increasing)")
    report.add_note(f"scale={scale.name}, |X|={store.cardinality}, k={k}, m={period}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
