"""Shared infrastructure of the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ExperimentScale:
    """Collection sizes and query counts of an experiment run.

    The paper's experiments use 59,619 real histograms or 100,000 synthetic
    vectors and 100 queries per configuration; ``small`` scales this down so
    the full suite regenerates in minutes, without changing dimensionality or
    any algorithmic parameter.
    """

    name: str
    corel_cardinality: int
    clustered_cardinality: int
    num_queries: int

    @property
    def is_paper_scale(self) -> bool:
        """Whether this is the published experiment size."""
        return self.name == "paper"


SMALL_SCALE = ExperimentScale(
    name="small", corel_cardinality=6_000, clustered_cardinality=6_000, num_queries=12
)
MEDIUM_SCALE = ExperimentScale(
    name="medium", corel_cardinality=20_000, clustered_cardinality=20_000, num_queries=40
)
PAPER_SCALE = ExperimentScale(
    name="paper", corel_cardinality=59_619, clustered_cardinality=100_000, num_queries=100
)

_SCALES = {scale.name: scale for scale in (SMALL_SCALE, MEDIUM_SCALE, PAPER_SCALE)}


def resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Look up a scale by name, or pass an explicit scale object through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError as error:
        raise ExperimentError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)} or pass an ExperimentScale"
        ) from error


@dataclass
class ExperimentReport:
    """Rows of one regenerated table or figure.

    Attributes
    ----------
    experiment_id:
        Identifier from the per-experiment index in DESIGN.md ("fig4", ...).
    title:
        Human-readable description of the regenerated artefact.
    rows:
        One mapping per series point or table row.
    notes:
        Free-form remarks (scale used, substitutions, caveats).
    """

    experiment_id: str
    title: str
    rows: list[Mapping[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one row to the report."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Append one note to the report."""
        self.notes.append(note)

    def columns(self) -> list[str]:
        """Column names, in first-appearance order across the rows."""
        names: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def column(self, name: str) -> list[object]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Render the report as a fixed-width text table."""
        columns = self.columns()
        if not columns:
            return f"{self.experiment_id}: (empty report)"
        rendered_rows = [
            [_format_cell(row.get(column)) for column in columns] for row in self.rows
        ]
        widths = [
            max(len(column), *(len(rendered[index]) for rendered in rendered_rows))
            if rendered_rows
            else len(column)
            for index, column in enumerate(columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(column.ljust(width) for column, width in zip(columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for rendered in rendered_rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10_000 or abs(value) < 0.01):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speed-up summaries)."""
    cleaned = [value for value in values if value > 0]
    if not cleaned:
        raise ExperimentError("geometric mean needs at least one positive value")
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))
