"""Figure 4 — pruning efficiency of Hq and Hh (histogram intersection).

The paper runs 100 queries sampled from the Corel collection with k = 10 and
m = 8, dimensions in decreasing query order, and plots the best / average /
worst number of pruned images against the number of processed dimensions.
The headline observations to reproduce: more than ~98 % of the images are
discarded after roughly a fifth of the dimensions, and Hq's average pruning is
close to Hh's even though Hh maintains extra bookkeeping.
"""

from __future__ import annotations

from repro.bounds.histogram import HhBound, HqBound
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import corel_setup
from repro.metrics.histogram import HistogramIntersection


def run(scale: str | ExperimentScale = "small", *, k: int = 10, period: int = 8) -> ExperimentReport:
    """Regenerate the Figure 4 pruning curves."""
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    metric = HistogramIntersection()
    schedule = FixedPeriodSchedule(period)

    collectors = {
        "Hq": collect_pruning_curves(store, metric, HqBound(), workload, k=k, schedule=schedule),
        "Hh": collect_pruning_curves(store, metric, HhBound(), workload, k=k, schedule=schedule),
    }

    report = ExperimentReport(
        experiment_id="fig4",
        title="Pruning efficiency of Hq and Hh (histogram intersection)",
    )
    reference = collectors["Hq"]
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for name, collector in collectors.items():
            pruned = collector.pruned_vectors()
            row[f"{name}_pruned_best"] = float(pruned["best"][index])
            row[f"{name}_pruned_avg"] = float(pruned["average"][index])
            row[f"{name}_pruned_worst"] = float(pruned["worst"][index])
        report.add_row(**row)

    collection_size = store.cardinality
    for name, collector in collectors.items():
        pruned = collector.pruned_vectors()
        fifth = int(round(store.dimensionality / 5 / collector.grid_step))
        fraction = float(pruned["average"][fifth]) / collection_size
        report.add_note(
            f"{name}: {fraction:.1%} of the collection pruned after ~1/5 of the dimensions "
            f"(paper reports > 98%)"
        )
    report.add_note(f"scale={scale.name}, |X|={collection_size}, k={k}, m={period}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
