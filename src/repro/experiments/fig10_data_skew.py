"""Figure 10 — effect of data skew on Ev pruning (clustered synthetic data).

The synthetic collections of Section 7.5 place cluster centres with
Zipf-skewed coordinates controlled by a parameter theta.  BOND's pruning
depends on that skew: with uniform centres (theta = 0) the partial scores do
not separate the candidates and pruning is poor, while larger theta lets the
decreasing-q ordering hit the discriminative dimensions early.
"""

from __future__ import annotations

from repro.bounds.euclidean import EvBound
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import clustered_setup
from repro.metrics.euclidean import SquaredEuclidean


def run(
    scale: str | ExperimentScale = "small",
    *,
    skews: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
    k: int = 10,
    period: int = 8,
) -> ExperimentReport:
    """Regenerate the Figure 10 skew sweep."""
    scale = resolve_scale(scale)
    metric = SquaredEuclidean()
    schedule = FixedPeriodSchedule(period)

    collectors = {}
    collection_size = 0
    for skew in skews:
        _, store, _, workload = clustered_setup(scale, skew=skew, seed=11 + int(10 * skew))
        collection_size = store.cardinality
        collectors[skew] = collect_pruning_curves(
            store, metric, EvBound(), workload, k=k, schedule=schedule
        )

    report = ExperimentReport(
        experiment_id="fig10", title="Effect of data skew (theta) on Ev pruning"
    )
    reference = collectors[skews[0]]
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for skew in skews:
            row[f"pruned_avg_theta={skew}"] = float(collectors[skew].pruned_vectors()["average"][index])
        report.add_row(**row)

    halfway = len(grid) // 2
    ordered = sorted(skews, key=lambda skew: float(collectors[skew].pruned_vectors()["average"][halfway]))
    report.add_note(
        f"pruning at the halfway point increases with skew: {' < '.join(f'theta={skew}' for skew in ordered)} "
        "(paper: data skew favours pruning; uniform centres prune poorly)"
    )
    report.add_note(f"scale={scale.name}, |X|={collection_size}, k={k}, m={period}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
