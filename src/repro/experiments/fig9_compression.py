"""Figure 9 — Hq pruning on exact versus 8-bit compressed fragments.

The approximation technique of the VA-file is orthogonal to BOND: running the
Hq filter on 8-bit-per-coefficient fragments follows almost the same pruning
curve as on the exact fragments (the quantisation error only slightly delays
pruning), while every fragment read is eight times smaller.  The filter
leaves a candidate set that still has to be refined on the exact vectors.
"""

from __future__ import annotations

from repro.bounds.histogram import HqBound
from repro.core.bond import BondSearcher
from repro.core.compressed import CompressedBondSearcher
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import report_grid_points
from repro.experiments.workloads import corel_setup
from repro.instrumentation.pruning import PruningCurveCollector
from repro.metrics.histogram import HistogramIntersection
from repro.storage.compressed import CompressedStore


def run(
    scale: str | ExperimentScale = "small",
    *,
    k: int = 10,
    period: int = 8,
    bits: int = 8,
    engine: str = "fused",
) -> ExperimentReport:
    """Regenerate the Figure 9 comparison of exact vs compressed pruning.

    ``engine`` selects the compressed searcher's execution engine; the fused
    interval kernels and the per-dimension reference loop produce bitwise
    identical pruning curves, so the figure is engine-independent.
    """
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    compressed = CompressedStore(store, bits=bits)
    metric = HistogramIntersection()
    schedule = FixedPeriodSchedule(period)

    exact_searcher = BondSearcher(store, metric=metric, bound=HqBound(), schedule=schedule)
    approx_searcher = CompressedBondSearcher(
        compressed, metric=metric, schedule=FixedPeriodSchedule(period), engine=engine
    )

    collectors = {
        "exact": PruningCurveCollector(store.dimensionality, store.cardinality, grid_step=period),
        "compressed": PruningCurveCollector(store.dimensionality, store.cardinality, grid_step=period),
    }
    for query in workload:
        collectors["exact"].add(exact_searcher.search(query, k).candidate_trace)
        collectors["compressed"].add(approx_searcher.search(query, k).candidate_trace)

    report = ExperimentReport(
        experiment_id="fig9", title="Hq pruning on exact vs 8-bit compressed fragments"
    )
    grid = collectors["exact"].grid()
    for index in report_grid_points(collectors["exact"]):
        report.add_row(
            dimensions=int(grid[index]),
            exact_candidates_avg=float(collectors["exact"].remaining_candidates()["average"][index]),
            compressed_candidates_avg=float(
                collectors["compressed"].remaining_candidates()["average"][index]
            ),
        )
    report.add_note(
        "paper: pruning on compressed fragments follows a similar trend to the exact fragments"
    )
    report.add_note(
        f"scale={scale.name}, |X|={store.cardinality}, k={k}, m={period}, bits={bits}, "
        f"engine={engine}"
    )
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
