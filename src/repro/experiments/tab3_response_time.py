"""Table 3 — response time of BOND against sequential scan.

The paper reports, over 100 queries on the 166-dimensional histograms, the
minimum / maximum / average / median response times in milliseconds of BOND
with criteria Hq, Hh and Ev, against the sequential-scan baselines SSH
(histogram intersection) and SSE (Euclidean).  Hq beats SSH by up to an order
of magnitude; Ev beats SSE by a smaller factor because its bounds are more
expensive to evaluate.

Absolute milliseconds obviously differ from 2002 hardware, so the report adds
machine-independent work ratios (bytes read and total cost-model work,
baseline / BOND) next to the timings.
"""

from __future__ import annotations

from repro.bounds.euclidean import EvBound
from repro.bounds.histogram import HhBound, HqBound
from repro.core.bond import BondSearcher
from repro.core.sequential import SequentialScan
from repro.experiments.base import ExperimentReport, ExperimentScale, geometric_mean, resolve_scale
from repro.experiments.workloads import corel_setup
from repro.instrumentation.timing import TimingStatistics
from repro.metrics.euclidean import SquaredEuclidean
from repro.metrics.histogram import HistogramIntersection
from repro.workload.ground_truth import result_scores_match


def run(scale: str | ExperimentScale = "small", *, k: int = 10) -> ExperimentReport:
    """Regenerate Table 3 (plus work-ratio columns)."""
    scale = resolve_scale(scale)
    _, store, row_store, workload = corel_setup(scale)
    histogram_metric = HistogramIntersection()
    euclidean_metric = SquaredEuclidean()

    methods = {
        "BOND-Hq": BondSearcher(store, metric=histogram_metric, bound=HqBound()),
        "BOND-Hh": BondSearcher(store, metric=histogram_metric, bound=HhBound()),
        "BOND-Ev": BondSearcher(store, metric=euclidean_metric, bound=EvBound()),
        "SSH": SequentialScan(row_store, metric=histogram_metric),
        "SSE": SequentialScan(row_store, metric=euclidean_metric),
    }
    baselines = {"BOND-Hq": "SSH", "BOND-Hh": "SSH", "BOND-Ev": "SSE"}

    timings: dict[str, list[float]] = {name: [] for name in methods}
    work: dict[str, list[float]] = {name: [] for name in methods}
    bytes_read: dict[str, list[float]] = {name: [] for name in methods}
    results_match = True
    for query in workload:
        per_query = {}
        for name, searcher in methods.items():
            result = searcher.search(query, k)
            timings[name].append(result.elapsed_seconds)
            work[name].append(float(result.cost.total_work))
            bytes_read[name].append(float(result.cost.bytes_read))
            per_query[name] = result
        results_match = results_match and result_scores_match(per_query["BOND-Hq"], per_query["SSH"])
        results_match = results_match and result_scores_match(per_query["BOND-Ev"], per_query["SSE"])

    report = ExperimentReport(
        experiment_id="tab3", title="Response time: BOND vs sequential scan"
    )
    for name in methods:
        statistics = TimingStatistics.from_samples(timings[name])
        row: dict[str, object] = {"method": name, **{f"{key}_ms": value for key, value in statistics.as_row().items()}}
        baseline = baselines.get(name)
        if baseline is not None:
            row["bytes_ratio_vs_scan"] = geometric_mean(
                [scan / bond for scan, bond in zip(bytes_read[baseline], bytes_read[name]) if bond > 0]
            )
            row["work_ratio_vs_scan"] = geometric_mean(
                [scan / bond for scan, bond in zip(work[baseline], work[name]) if bond > 0]
            )
        report.add_row(**row)

    report.add_note(f"all BOND results identical to the scans: {results_match}")
    report.add_note(
        "paper: Hq is the best histogram-intersection criterion (up to ~10x over SSH); "
        "Ev beats SSE by a smaller factor because its bounds cost more CPU"
    )
    report.add_note(f"scale={scale.name}, |X|={store.cardinality}, k={k}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
