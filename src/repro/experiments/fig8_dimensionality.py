"""Figure 8 — robustness of Ev pruning to the dataset dimensionality.

The paper builds HSV histogram datasets of dimensionality 26, 52, 166 and 260
from the same image collection and plots pruned images against the
*percentage* of processed dimensions.  Effectiveness decreases mildly with
dimensionality — the k-NN problem itself becomes less meaningful — but does
not collapse.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.euclidean import EvBound
from repro.core.planner import FixedPeriodSchedule, recommend_period
from repro.datasets.corel import PAPER_DIMENSIONALITIES
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves
from repro.experiments.workloads import corel_collection
from repro.metrics.euclidean import SquaredEuclidean
from repro.storage.decomposed import DecomposedStore
from repro.workload.queries import sample_queries


def run(
    scale: str | ExperimentScale = "small",
    *,
    dimensionalities: tuple[int, ...] = PAPER_DIMENSIONALITIES,
    k: int = 10,
) -> ExperimentReport:
    """Regenerate the Figure 8 dimensionality sweep."""
    scale = resolve_scale(scale)
    metric = SquaredEuclidean()

    fractions = np.linspace(0.0, 1.0, 11)
    per_dimensionality: dict[int, np.ndarray] = {}
    sizes: dict[int, int] = {}
    for dimensionality in dimensionalities:
        collection = corel_collection(scale, dimensionality=dimensionality, seed=42 + dimensionality)
        store = DecomposedStore(collection)
        workload = sample_queries(collection, scale.num_queries, seed=7)
        period = recommend_period(dimensionality, target_attempts=20)
        collector = collect_pruning_curves(
            store,
            metric,
            EvBound(),
            workload,
            k=k,
            schedule=FixedPeriodSchedule(period),
            grid_step=max(1, dimensionality // 20),
        )
        grid = collector.grid()
        pruned_average = collector.pruned_vectors()["average"]
        # Resample onto the common percentage axis.
        resampled = np.interp(fractions * dimensionality, grid, pruned_average)
        per_dimensionality[dimensionality] = resampled / store.cardinality
        sizes[dimensionality] = store.cardinality

    report = ExperimentReport(
        experiment_id="fig8", title="Impact of dimensionality on Ev pruning (fraction pruned)"
    )
    for index, fraction in enumerate(fractions):
        row: dict[str, object] = {"dimensions_processed_pct": float(100 * fraction)}
        for dimensionality in dimensionalities:
            row[f"pruned_fraction_d={dimensionality}"] = float(per_dimensionality[dimensionality][index])
        report.add_row(**row)
    report.add_note(
        "paper: effectiveness decreases with dimensionality, though not dramatically"
    )
    report.add_note(f"scale={scale.name}, |X|={sizes[dimensionalities[0]]}, k={k}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
