"""Section 5.2 ablation — choosing the pruning period m.

Attempting to prune after every dimension maximises how early vectors are
discarded but pays the bound-evaluation and kfetch overhead most often;
pruning rarely wastes fragment reads on vectors that could already have been
dropped.  This ablation sweeps m (and the adaptive geometric schedule) and
reports the average work and time per query, which is the trade-off Section
5.2 describes qualitatively.
"""

from __future__ import annotations

from repro.bounds.histogram import HqBound
from repro.core.bond import BondSearcher
from repro.core.planner import FixedPeriodSchedule, GeometricSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.workloads import corel_setup
from repro.metrics.histogram import HistogramIntersection


def run(
    scale: str | ExperimentScale = "small",
    *,
    periods: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    k: int = 10,
) -> ExperimentReport:
    """Regenerate the pruning-period ablation."""
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    metric = HistogramIntersection()

    schedules = {f"m={period}": FixedPeriodSchedule(period) for period in periods}
    schedules["adaptive (geometric)"] = GeometricSchedule(initial_period=8)

    report = ExperimentReport(experiment_id="abl-m", title="Choice of the pruning period m (Hq)")
    for label, schedule in schedules.items():
        searcher = BondSearcher(store, metric=metric, bound=HqBound(), schedule=schedule)
        work, elapsed, comparisons = [], [], []
        for query in workload:
            result = searcher.search(query, k)
            work.append(float(result.cost.total_work))
            elapsed.append(result.elapsed_seconds)
            comparisons.append(float(result.cost.comparisons + result.cost.heap_operations))
        report.add_row(
            schedule=label,
            avg_work=sum(work) / len(work),
            avg_prune_overhead_ops=sum(comparisons) / len(comparisons),
            avg_time_ms=1000.0 * sum(elapsed) / len(elapsed),
        )

    report.add_note(
        "small m prunes sooner but pays kfetch/selection overhead more often; "
        "large m wastes fragment reads — the sweet spot is in between (Section 5.2)"
    )
    report.add_note(f"scale={scale.name}, |X|={store.cardinality}, k={k}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
