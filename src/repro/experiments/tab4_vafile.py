"""Table 4 — BOND on approximations versus a VA-file scan.

Both methods use the same 8-bit approximations and both are exact after their
refinement step; the difference is the filter: the VA-file scans *all*
approximate coefficients of *all* vectors, whereas BOND-on-approximations
prunes dimension-wise and stops reading approximate fragments once the
candidate set has collapsed.  The paper reports an overall improvement of a
factor 3-5 in favour of BOND on the 166-dimensional dataset.
"""

from __future__ import annotations

from repro.baselines.vafile import VAFile
from repro.core.compressed import CompressedBondSearcher
from repro.core.sequential import SequentialScan
from repro.experiments.base import ExperimentReport, ExperimentScale, geometric_mean, resolve_scale
from repro.experiments.workloads import corel_setup
from repro.instrumentation.timing import TimingStatistics
from repro.metrics.histogram import HistogramIntersection
from repro.storage.compressed import CompressedStore
from repro.workload.ground_truth import result_scores_match


def run(
    scale: str | ExperimentScale = "small",
    *,
    k: int = 10,
    bits: int = 8,
    engine: str = "fused",
) -> ExperimentReport:
    """Regenerate Table 4 (filter/refine comparison against the VA-file)."""
    scale = resolve_scale(scale)
    _, store, row_store, workload = corel_setup(scale)
    metric = HistogramIntersection()
    compressed = CompressedStore(store, bits=bits)

    bond = CompressedBondSearcher(compressed, metric=metric, engine=engine)
    vafile = VAFile(compressed, metric=metric)
    scan = SequentialScan(row_store, metric=metric)

    timings = {"BOND-Hq (8-bit)": [], "VA-file": [], "SSH (exact scan)": []}
    work = {"BOND-Hq (8-bit)": [], "VA-file": []}
    vafile_survivors = []
    results_match = True
    for query in workload:
        bond_result = bond.search(query, k)
        vafile_result = vafile.search(query, k)
        scan_result = scan.search(query, k)
        timings["BOND-Hq (8-bit)"].append(bond_result.elapsed_seconds)
        timings["VA-file"].append(vafile_result.elapsed_seconds)
        timings["SSH (exact scan)"].append(scan_result.elapsed_seconds)
        work["BOND-Hq (8-bit)"].append(float(bond_result.cost.total_work))
        work["VA-file"].append(float(vafile_result.cost.total_work))
        # The search result records the filter's survivor count on its
        # pruning trace, so the diagnostic costs nothing extra.
        vafile_survivors.append(vafile_result.candidate_trace.candidates_remaining[-1])
        results_match = results_match and result_scores_match(bond_result, scan_result)
        results_match = results_match and result_scores_match(vafile_result, scan_result)

    # The batched filter shares the single approximation pass across the
    # whole workload; per-query wall clock is the batch time divided evenly.
    # Batch rounds always run the fused interval kernels, so the row is
    # timed on an explicitly fused searcher no matter what ``engine`` says.
    batched_bond = CompressedBondSearcher(compressed, metric=metric, engine="fused")
    batch = batched_bond.search_batch(list(workload), k)
    batch_seconds = [batch.elapsed_seconds / max(len(batch), 1)] * max(len(batch), 1)
    timings["BOND-Hq (8-bit, batched)"] = batch_seconds

    report = ExperimentReport(
        experiment_id="tab4", title="Approximated fragments: BOND filter vs VA-file scan"
    )
    for name, samples in timings.items():
        statistics = TimingStatistics.from_samples(samples)
        report.add_row(method=name, **{f"{key}_ms": value for key, value in statistics.as_row().items()})
    improvement = geometric_mean(
        [vafile_work / bond_work for vafile_work, bond_work in zip(work["VA-file"], work["BOND-Hq (8-bit)"]) if bond_work > 0]
    )
    report.add_row(method="work ratio VA-file / BOND", average_ms=improvement)
    report.add_note(f"both methods exact after refinement: {results_match}")
    report.add_note("paper: overall improvement of a factor 3-5 in favour of BOND")
    report.add_note(
        f"VA-file filter survivors (avg of {len(vafile_survivors)} queries): "
        f"{sum(vafile_survivors) / max(len(vafile_survivors), 1):.1f}"
    )
    report.add_note(
        f"scale={scale.name}, |X|={store.cardinality}, k={k}, bits={bits}, engine={engine}"
    )
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
