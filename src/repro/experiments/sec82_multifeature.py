"""Section 8.2 — multi-feature queries: synchronized BOND vs stream merging.

Two synthetic clustered feature collections (64- and 128-dimensional) describe
the same 100,000 objects; queries combine one component per collection with
an aggregate function.  The paper reports that synchronized dimension-wise
search is on average ~20 % faster than stream merging when the aggregate is
the average and ~70 % faster when it is the fuzzy min — and notes that the
stream-merging baseline was given the *optimal* per-stream retrieval depth,
which is unknowable in practice, so the real advantage is larger.
"""

from __future__ import annotations

from repro.core.multifeature import (
    FeatureComponent,
    MultiFeatureBondSearcher,
    StreamMergingSearcher,
)
from repro.datasets.clustered import make_multifeature_collections
from repro.experiments.base import ExperimentReport, ExperimentScale, geometric_mean, resolve_scale
from repro.metrics.aggregates import AverageAggregate, FuzzyMinAggregate, ScoreAggregate
from repro.metrics.euclidean import SquaredEuclidean
from repro.storage.decomposed import DecomposedStore
from repro.workload.queries import sample_queries


def _components(first, second) -> list[FeatureComponent]:
    return [
        FeatureComponent("color", DecomposedStore(first), SquaredEuclidean()),
        FeatureComponent("texture", DecomposedStore(second), SquaredEuclidean()),
    ]


def run(scale: str | ExperimentScale = "small", *, k: int = 10) -> ExperimentReport:
    """Regenerate the Section 8.2 comparison for the average and min aggregates."""
    scale = resolve_scale(scale)
    first, second = make_multifeature_collections(
        scale.clustered_cardinality, dimensionalities=(64, 128), skew=1.0
    )
    first_queries = sample_queries(first, scale.num_queries, seed=7)
    second_queries = sample_queries(second, scale.num_queries, seed=7)

    aggregates: dict[str, ScoreAggregate] = {
        "average": AverageAggregate(),
        "fuzzy-min": FuzzyMinAggregate(),
    }

    report = ExperimentReport(
        experiment_id="sec82",
        title="Multi-feature queries: synchronized BOND vs stream merging",
    )
    for label, aggregate in aggregates.items():
        synchronized = MultiFeatureBondSearcher(_components(first, second), aggregate)
        merging = StreamMergingSearcher(_components(first, second), aggregate)
        sync_work, merge_work, sync_time, merge_time, matches = [], [], [], [], True
        for query_first, query_second in zip(first_queries, second_queries):
            sync_result = synchronized.search([query_first, query_second], k)
            merge_result = merging.search([query_first, query_second], k)
            sync_work.append(float(sync_result.cost.total_work))
            merge_work.append(float(merge_result.cost.total_work))
            sync_time.append(sync_result.elapsed_seconds)
            merge_time.append(merge_result.elapsed_seconds)
            top_sync = sync_result.scores[0] if sync_result.k else float("nan")
            top_merge = merge_result.scores[0] if merge_result.k else float("nan")
            matches = matches and abs(top_sync - top_merge) < 1e-6
        work_ratio = geometric_mean(
            [merge / sync for merge, sync in zip(merge_work, sync_work) if sync > 0]
        )
        report.add_row(
            aggregate=label,
            synchronized_avg_ms=1000.0 * sum(sync_time) / len(sync_time),
            merging_avg_ms=1000.0 * sum(merge_time) / len(merge_time),
            work_ratio_merging_over_sync=work_ratio,
            synchronized_faster_pct=100.0 * (1.0 - 1.0 / work_ratio),
            top1_matches=matches,
        )

    report.add_note(
        "paper: synchronized search ~20% faster for the average aggregate and ~70% faster for min, "
        "with the merging baseline given the optimal per-stream depth"
    )
    report.add_note(f"scale={scale.name}, |X|={first.shape[0]}, k={k}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
