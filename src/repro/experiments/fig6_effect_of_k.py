"""Figure 6 — effect of k on the pruning of Hq.

The paper sweeps k over 1, 10, 100 and 1000 and shows that BOND still prunes
the space early even for large k; the gap between k = 1 and k = 10 is large
because queries are collection members, so for k = 1 the perfect match makes
kappa very tight.  No image can be pruned before T(q-) exceeds 0.5 (around
the 15th dimension on the real data), which the Hq ``pruning_worthwhile``
rule reproduces.
"""

from __future__ import annotations

from repro.bounds.histogram import HqBound
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import corel_setup
from repro.metrics.histogram import HistogramIntersection


def run(
    scale: str | ExperimentScale = "small",
    *,
    k_values: tuple[int, ...] = (1, 10, 100, 1000),
    period: int = 8,
) -> ExperimentReport:
    """Regenerate the Figure 6 sweep over k."""
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    metric = HistogramIntersection()
    schedule = FixedPeriodSchedule(period)

    collectors = {
        k: collect_pruning_curves(store, metric, HqBound(), workload, k=k, schedule=schedule)
        for k in k_values
        if k <= store.cardinality
    }

    report = ExperimentReport(experiment_id="fig6", title="Effect of k on Hq pruning")
    reference = next(iter(collectors.values()))
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for k, collector in collectors.items():
            row[f"pruned_avg_k={k}"] = float(collector.pruned_vectors()["average"][index])
        report.add_row(**row)
    report.add_note(
        "paper: even k=1000 prunes early; k=1 is near-perfect because queries are collection members"
    )
    report.add_note(f"scale={scale.name}, |X|={store.cardinality}, m={period}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
