"""Datasets and query workloads shared by the experiment modules."""

from __future__ import annotations

import numpy as np

from repro.datasets.clustered import ClusteredConfig, make_clustered
from repro.datasets.corel import CorelLikeConfig, make_corel_like
from repro.experiments.base import ExperimentScale
from repro.storage.decomposed import DecomposedStore
from repro.storage.rowstore import RowStore
from repro.workload.queries import QueryWorkload, sample_queries

#: Dimensionality of the main Corel-like collection.
COREL_DIMENSIONALITY = 166
#: Dimensionality of the clustered synthetic collection of Section 7.5.
CLUSTERED_DIMENSIONALITY = 128


def corel_collection(
    scale: ExperimentScale, *, dimensionality: int = COREL_DIMENSIONALITY, seed: int = 42
) -> np.ndarray:
    """The Corel-like histogram collection at the requested scale."""
    return make_corel_like(
        CorelLikeConfig(
            cardinality=scale.corel_cardinality,
            dimensionality=dimensionality,
            seed=seed,
        )
    )


def clustered_collection(
    scale: ExperimentScale,
    *,
    dimensionality: int = CLUSTERED_DIMENSIONALITY,
    skew: float = 1.0,
    seed: int = 11,
) -> np.ndarray:
    """The clustered synthetic collection (Section 7.5) at the requested scale."""
    return make_clustered(
        ClusteredConfig(
            cardinality=scale.clustered_cardinality,
            dimensionality=dimensionality,
            skew=skew,
            seed=seed,
        )
    )


def corel_setup(
    scale: ExperimentScale,
    *,
    dimensionality: int = COREL_DIMENSIONALITY,
    seed: int = 42,
    query_seed: int = 7,
) -> tuple[np.ndarray, DecomposedStore, RowStore, QueryWorkload]:
    """Collection, decomposed store, row store and query workload in one call."""
    collection = corel_collection(scale, dimensionality=dimensionality, seed=seed)
    queries = sample_queries(collection, scale.num_queries, seed=query_seed)
    return collection, DecomposedStore(collection), RowStore(collection), queries


def clustered_setup(
    scale: ExperimentScale,
    *,
    dimensionality: int = CLUSTERED_DIMENSIONALITY,
    skew: float = 1.0,
    seed: int = 11,
    query_seed: int = 7,
) -> tuple[np.ndarray, DecomposedStore, RowStore, QueryWorkload]:
    """Clustered collection, stores and query workload in one call."""
    collection = clustered_collection(scale, dimensionality=dimensionality, skew=skew, seed=seed)
    queries = sample_queries(collection, scale.num_queries, seed=query_seed)
    return collection, DecomposedStore(collection), RowStore(collection), queries
