"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run(scale="small", ...)`` function returning an
:class:`~repro.experiments.base.ExperimentReport` whose rows mirror the
series or table rows of the corresponding paper artefact.  ``scale="small"``
uses collection sizes that finish in seconds (the benchmark default);
``scale="paper"`` uses the published sizes (59,619 / 100,000 vectors).

==========  =====================================================
Experiment  Paper artefact
==========  =====================================================
``fig2``    Figure 2 — dataset statistics
``fig4``    Figure 4 — pruning of Hq vs Hh (histogram intersection)
``fig5``    Figure 5 — pruning of Eq vs Ev (Euclidean)
``fig6``    Figure 6 — effect of k on Hq pruning
``fig7``    Figure 7 — dimension orderings
``fig8``    Figure 8 — dimensionality sweep (Ev)
``tab3``    Table 3 — response times, BOND vs sequential scan
``fig9``    Figure 9 — Hq on exact vs compressed fragments
``tab4``    Table 4 — compressed BOND vs VA-file
``fig10``   Figure 10 — data-skew sweep (Ev)
``fig11``   Figure 11 — weight-skew sweep (weighted Euclidean)
``sec82``   Section 8.2 — multi-feature: synchronized vs merging
``abl_sam`` Motivation — R-tree breakdown with dimensionality
``abl_m``   Section 5.2 — choice of the pruning period m
==========  =====================================================
"""

from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale

__all__ = ["ExperimentReport", "ExperimentScale", "resolve_scale"]
