"""Shared runner that collects pruning curves over a query workload."""

from __future__ import annotations

from repro.bounds.base import PruningBound
from repro.core.bond import BondSearcher
from repro.core.ordering import DimensionOrdering
from repro.core.planner import PruningSchedule
from repro.instrumentation.pruning import PruningCurveCollector
from repro.metrics.base import Metric
from repro.storage.decomposed import DecomposedStore
from repro.workload.queries import QueryWorkload


def collect_pruning_curves(
    store: DecomposedStore,
    metric: Metric,
    bound: PruningBound,
    workload: QueryWorkload,
    *,
    k: int = 10,
    ordering: DimensionOrdering | None = None,
    schedule: PruningSchedule | None = None,
    grid_step: int = 8,
) -> PruningCurveCollector:
    """Run BOND for every query in the workload and aggregate the pruning traces."""
    searcher = BondSearcher(store, metric=metric, bound=bound, ordering=ordering, schedule=schedule)
    collector = PruningCurveCollector(
        dimensionality=store.dimensionality,
        collection_size=store.cardinality,
        grid_step=grid_step,
    )
    for query in workload:
        result = searcher.search(query, k)
        collector.add(result.candidate_trace)
    return collector


def report_grid_points(collector: PruningCurveCollector, *, max_points: int = 12) -> list[int]:
    """A readable subset of grid indices for tabular reports."""
    grid = collector.grid()
    if grid.shape[0] <= max_points:
        return list(range(grid.shape[0]))
    stride = max(1, grid.shape[0] // max_points)
    indices = list(range(0, grid.shape[0], stride))
    if indices[-1] != grid.shape[0] - 1:
        indices.append(grid.shape[0] - 1)
    return indices
