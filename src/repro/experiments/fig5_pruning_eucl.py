"""Figure 5 — pruning efficiency of Eq and Ev (Euclidean distance).

On the same histogram collection, the query-only criterion Eq "prunes hardly
any image" because its corner upper bound is far too loose, while Ev (which
knows the remaining mass T(v+) of every vector) prunes well, although not as
fast as the histogram-intersection criteria.  Because the histograms are
L1-normalised the paper tightens Eq's corner bound with the T(v) = 1 fact;
the ``remaining_sum_cap=1.0`` option reproduces that refinement.
"""

from __future__ import annotations

from repro.bounds.euclidean import EqBound, EvBound
from repro.core.planner import FixedPeriodSchedule
from repro.experiments.base import ExperimentReport, ExperimentScale, resolve_scale
from repro.experiments.pruning_runner import collect_pruning_curves, report_grid_points
from repro.experiments.workloads import corel_setup
from repro.metrics.euclidean import SquaredEuclidean


def run(scale: str | ExperimentScale = "small", *, k: int = 10, period: int = 8) -> ExperimentReport:
    """Regenerate the Figure 5 pruning curves."""
    scale = resolve_scale(scale)
    _, store, _, workload = corel_setup(scale)
    metric = SquaredEuclidean()
    schedule = FixedPeriodSchedule(period)

    collectors = {
        "Eq": collect_pruning_curves(
            store, metric, EqBound(remaining_sum_cap=1.0), workload, k=k, schedule=schedule
        ),
        "Ev": collect_pruning_curves(store, metric, EvBound(), workload, k=k, schedule=schedule),
    }

    report = ExperimentReport(
        experiment_id="fig5",
        title="Pruning efficiency of Eq and Ev (squared Euclidean distance)",
    )
    reference = collectors["Ev"]
    grid = reference.grid()
    for index in report_grid_points(reference):
        row: dict[str, object] = {"dimensions": int(grid[index])}
        for name, collector in collectors.items():
            pruned = collector.pruned_vectors()
            row[f"{name}_pruned_avg"] = float(pruned["average"][index])
        report.add_row(**row)

    collection_size = store.cardinality
    halfway = len(grid) // 2
    eq_fraction = float(collectors["Eq"].pruned_vectors()["average"][halfway]) / collection_size
    ev_fraction = float(collectors["Ev"].pruned_vectors()["average"][halfway]) / collection_size
    report.add_note(
        f"halfway through the dimensions Eq has pruned {eq_fraction:.1%} and Ev {ev_fraction:.1%} "
        "(paper: Eq prunes hardly anything, Ev prunes well but slower than Hq/Hh)"
    )
    report.add_note(f"scale={scale.name}, |X|={collection_size}, k={k}, m={period}")
    return report


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().format_table())
