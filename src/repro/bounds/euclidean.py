"""Pruning bounds for squared Euclidean distance (Section 4.3).

For Euclidean distance BOND looks for the k *smallest* aggregates, so the
pruning test flips: a vector is discarded when its best case (lower bound) is
already worse than the k-th best worst case (``S_min[i] > kappa_max``).

* **Eq** uses only the query.  The remaining distance is at least 0 (the
  vector may coincide with the query on every unseen dimension) and at most
  the squared distance from ``q⁺`` to the furthest corner of the remaining
  unit hyper-box (Equation 10).  When the data are known to be L1-normalised
  (``T(v) = 1``, as for the Corel histograms), the optional
  ``remaining_sum_cap`` tightens the corner bound the way Section 7.1 does.

* **Ev** additionally uses the remaining mass ``T(v⁺)`` of each vector.
  Lemma 1 gives the largest possible remaining distance — attained by piling
  the remaining mass onto the dimensions with the smallest query values — and
  Lemma 2 gives the smallest — attained by spreading the mass so every
  per-dimension difference is equal.  The footnote-3 refinements to Lemma 2
  are omitted in the paper ("details are omitted for the sake of
  readability"); this implementation uses the plain Lemma 2, which is sound,
  merely slightly looser in two corner cases.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import PartialState, PruningBound, RemainingBounds
from repro.errors import BoundError


def lemma1_upper_bound(remaining_query: np.ndarray, remaining_sums: np.ndarray) -> np.ndarray:
    """Largest possible ``S(v⁺, q⁺)`` given ``T(v⁺)`` (Lemma 1), vectorised.

    Parameters
    ----------
    remaining_query:
        The query coefficients of the remaining dimensions (any order).
    remaining_sums:
        ``T(v⁺)`` per candidate.

    Returns
    -------
    One upper bound per candidate.  The bound is exact (it is the maximum of
    the remaining distance over all vectors in the unit box with the given
    coordinate sum).
    """
    remaining_query = np.asarray(remaining_query, dtype=np.float64)
    remaining_sums = np.asarray(remaining_sums, dtype=np.float64)
    num_remaining = remaining_query.shape[0]
    if num_remaining == 0:
        return np.zeros_like(remaining_sums)

    # Sort q+ in decreasing order; the adversarial vector fills the dimensions
    # with the *smallest* query values (the tail of this order) up to 1.
    query_sorted = np.sort(remaining_query)[::-1]
    query_squared = query_sorted * query_sorted
    one_minus_squared = (1.0 - query_sorted) ** 2

    # prefix_q2[j]  = sum of q_i^2 over the first j sorted dimensions.
    # suffix_1m[j]  = sum of (1 - q_i)^2 over sorted dimensions j .. R-1.
    prefix_q2 = np.concatenate([[0.0], np.cumsum(query_squared)])
    suffix_1m = np.concatenate([np.cumsum(one_minus_squared[::-1])[::-1], [0.0]])

    # Clip T(v+) into the feasible range [0, R] before decomposing it into its
    # integer part (dimensions filled to 1) and fractional remainder.
    clipped = np.clip(remaining_sums, 0.0, float(num_remaining))
    filled = np.floor(clipped).astype(np.int64)
    fractional = clipped - filled
    # Dimensions are 1-based in the paper: l = R - floor(T(v+)) is the index
    # that receives the fractional mass; the l-1 larger-q dimensions get 0.
    fractional_position = num_remaining - filled

    bounds = np.empty_like(clipped)
    all_filled = fractional_position == 0
    bounds[all_filled] = suffix_1m[0]
    partial = ~all_filled
    if np.any(partial):
        positions = fractional_position[partial]
        bounds[partial] = (
            prefix_q2[positions - 1]
            + (fractional[partial] - query_sorted[positions - 1]) ** 2
            + suffix_1m[positions]
        )
    return bounds


def lemma2_lower_bound(remaining_query: np.ndarray, remaining_sums: np.ndarray) -> np.ndarray:
    """Smallest possible ``S(v⁺, q⁺)`` given ``T(v⁺)`` (Lemma 2), vectorised.

    The minimum is attained when the difference to the query is spread
    equally over the remaining dimensions:
    ``(T(v⁺) - T(q⁺))² / (N - m)``.
    """
    remaining_query = np.asarray(remaining_query, dtype=np.float64)
    remaining_sums = np.asarray(remaining_sums, dtype=np.float64)
    num_remaining = remaining_query.shape[0]
    if num_remaining == 0:
        return np.zeros_like(remaining_sums)
    total_difference = remaining_sums - float(remaining_query.sum())
    return (total_difference * total_difference) / float(num_remaining)


class EqBound(PruningBound):
    """Query-only bounds for squared Euclidean distance (criterion Eq).

    Parameters
    ----------
    remaining_sum_cap:
        Optional upper bound on ``T(v⁺)`` known to hold for every vector in
        the collection (e.g. 1.0 for L1-normalised histograms).  When given
        and at most 1, the corner bound of Equation 10 is replaced by the
        tighter maximum over the capped mass, matching the refinement used in
        Section 7.1.  Without it the plain Equation 10 corner bound is used.
    """

    name = "Eq"

    def __init__(self, *, remaining_sum_cap: float | None = None) -> None:
        if remaining_sum_cap is not None and remaining_sum_cap < 0.0:
            raise BoundError("remaining_sum_cap must be non-negative")
        self._remaining_sum_cap = remaining_sum_cap

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """``[0, corner distance]`` for every candidate."""
        if state.num_remaining == 0:
            return RemainingBounds(lower=0.0, upper=0.0)

        corner = state.remaining_corner_mass
        upper = corner
        cap = self._remaining_sum_cap
        if cap is not None and cap <= 1.0:
            # With T(v+) <= cap <= 1 the adversary can either leave every
            # remaining dimension at zero (distance sum(q_i^2)) or spend the
            # whole cap on the dimension with the smallest query value; the
            # maximum over the capped range is attained at one of these two
            # extremes because the distance is convex in the spent mass.
            at_zero = state.remaining_query_square_mass
            at_cap = float(lemma1_upper_bound(state.remaining_query, np.array([cap]))[0])
            upper = min(corner, max(at_zero, at_cap))
        return RemainingBounds(lower=0.0, upper=upper)


class EvBound(PruningBound):
    """Vector-aware bounds for squared Euclidean distance (criterion Ev)."""

    name = "Ev"
    needs_remaining_value_sums = True

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Per-candidate Lemma 1 / Lemma 2 bounds."""
        if state.remaining_value_sums is None:
            raise BoundError("criterion Ev needs T(v+) maintained per candidate")
        remaining_query = state.remaining_query
        remaining_sums = state.remaining_value_sums
        if remaining_query.shape[0] == 0:
            zeros = np.zeros_like(remaining_sums)
            return RemainingBounds(lower=zeros, upper=zeros)
        upper = lemma1_upper_bound(remaining_query, remaining_sums)
        lower = lemma2_lower_bound(remaining_query, remaining_sums)
        return RemainingBounds(lower=lower, upper=upper)
