"""Pruning bounds for histogram intersection (Section 4.1).

Both criteria bound the remaining contribution
``S(h⁺, q⁺) = sum_{j>m} min(h_j, q_j)`` of a normalised histogram ``h``.

* **Hq** uses only the query: ``0 <= S(h⁺, q⁺) <= T(q⁺) = 1 - T(q⁻)``
  (Equation 5).  The bounds are identical for every histogram, so no
  per-vector bookkeeping is needed; the pruning test reduces to Equation 6.

* **Hh** additionally uses the processed mass ``T(h⁻)`` of each histogram
  (Equations 7 and 8)::

      S(h⁺, q⁺) <= min(T(h⁺), T(q⁺)) = min(1 - T(h⁻), T(q⁺))
      S(h⁺, q⁺) >= min(q_min, T(h⁺)) = min(q_min, 1 - T(h⁻))

  where ``q_min`` is the smallest query coefficient among the remaining
  dimensions.  Hh prunes more but pays for maintaining ``T(h⁻)``.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import PartialState, PruningBound, RemainingBounds
from repro.errors import BoundError


class HqBound(PruningBound):
    """Query-only bounds for histogram intersection (criterion Hq)."""

    name = "Hq"

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """``[0, T(q⁺)]`` for every candidate."""
        return RemainingBounds(lower=0.0, upper=state.remaining_query_mass)

    def pruning_worthwhile(self, state: PartialState) -> bool:
        """Hq cannot prune before ``T(q⁻) > 0.5`` (Section 5.2).

        The best partial score is at most ``T(q⁻)`` and every candidate's
        upper bound is its partial score plus ``T(q⁺) = 1 - T(q⁻)``; for the
        pruning inequality of Equation 6 to exclude anything the right-hand
        side must be positive.
        """
        return state.processed_query_mass > 0.5


class HhBound(PruningBound):
    """Histogram-aware bounds for histogram intersection (criterion Hh)."""

    name = "Hh"
    needs_partial_value_sums = True

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Per-candidate bounds from Equations 7 and 8."""
        if state.partial_value_sums is None:
            raise BoundError("criterion Hh needs T(h-) maintained per candidate")
        remaining_query_mass = state.remaining_query_mass
        # Remaining mass of each histogram: the histograms are L1-normalised,
        # so T(h+) = 1 - T(h-).  Clip at zero to absorb floating-point noise.
        remaining_histogram_mass = np.clip(1.0 - state.partial_value_sums, 0.0, None)

        upper = np.minimum(remaining_histogram_mass, remaining_query_mass)
        if state.num_remaining == 0:
            # No dimensions left: the remaining contribution is exactly zero.
            lower = np.zeros_like(upper)
        else:
            lower = np.minimum(state.remaining_query_min, remaining_histogram_mass)
        return RemainingBounds(lower=lower, upper=upper)
