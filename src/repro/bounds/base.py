"""Protocol shared by all pruning bounds.

A bound receives the *partial state* of a BOND run — which dimensions have
been processed (and in what order), the query, the candidates' partial scores
and whatever per-vector bookkeeping the bound declared it needs — and returns
per-candidate lower/upper bounds on the contribution of the remaining
dimensions.  BOND turns these into bounds on the complete aggregate by adding
the partial scores (all the paper's aggregates are sums over dimensions).

Bounds declare their bookkeeping needs through two flags:

* ``needs_partial_value_sums`` — the bound needs ``T(x⁻)``, the sum of each
  candidate's coefficients over the *processed* dimensions (criterion Hh);
* ``needs_remaining_value_sums`` — the bound needs ``T(x⁺)``, the sum over
  the *remaining* dimensions (criteria Ev and the weighted bound); the paper
  materialises ``T(v)`` once and updates it as dimensions are consumed.

The distinction matters for the cost accounting: maintaining these sums is
exactly the "additional bookkeeping" the paper weighs against the better
pruning of the richer criteria.

Narrow-store safety
-------------------
Bounds never touch raw fragment dtypes: every input they see — query
coefficients, partial scores, ``T(x⁻)`` / ``T(x⁺)`` — is float64 by
construction (queries are validated to float64, scores accumulate in
float64 workspaces, and the row-sum column is stored float64 for every
fragment format).  Over a narrow store (float32/float16 fragments, see
:mod:`repro.storage.formats`) those float64 inputs are derived from the
float64-**widened** quantised coefficients, so each bound is exact for the
widened collection: the interval it brackets contains the true remaining
contribution *of the values the store actually holds*, and branch-and-bound
can never falsely dismiss a true neighbour of the quantised collection.
The only drift a narrow format introduces is the one-time ingest
quantisation, bounded per query by
:meth:`~repro.storage.formats.FragmentFormat.score_tolerance`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import BoundError


def _suffix_sums(values: np.ndarray) -> np.ndarray:
    """``out[j] = sum(values[j:])`` with a trailing 0 (length N + 1)."""
    return np.concatenate([np.cumsum(values[::-1])[::-1], [0.0]])


class OrderStatistics:
    """Suffix aggregates of a query along its processing order.

    A blocked BOND run attempts to prune once per pruning period; each attempt
    needs query-side aggregates over the *remaining* dimensions (their mass,
    their minimum, corner distances, weight sums).  Recomputing those by
    fancy-indexing ``query[order[m:]]`` costs O(N - m) per attempt; this class
    precomputes each suffix once per (query, order) — lazily, on the first
    attempt that needs it, so a bound only pays for the statistics it actually
    consults — and every later attempt reads a single scalar.  Both the
    blocked and the per-dimension engine consult the same statistics, which
    keeps their pruning decisions bit-for-bit identical.
    """

    def __init__(
        self, query: np.ndarray, order: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        self._ordered_query = np.asarray(query, dtype=np.float64)[order]
        self._ordered_weights = (
            np.asarray(weights, dtype=np.float64)[order] if weights is not None else None
        )
        self._cache: dict[str, np.ndarray] = {}

    @property
    def has_weights(self) -> bool:
        """Whether weighted suffix statistics are available."""
        return self._ordered_weights is not None

    def _cached(self, key: str, build) -> np.ndarray:
        array = self._cache.get(key)
        if array is None:
            array = build()
            self._cache[key] = array
        return array

    @property
    def suffix_query_mass(self) -> np.ndarray:
        """``out[m] = T(q⁺)`` after m processed dimensions."""
        return self._cached("query_mass", lambda: _suffix_sums(self._ordered_query))

    @property
    def suffix_query_square_mass(self) -> np.ndarray:
        """``out[m] = sum q_i²`` over the remaining dimensions."""
        return self._cached(
            "query_square", lambda: _suffix_sums(self._ordered_query * self._ordered_query)
        )

    @property
    def suffix_query_min(self) -> np.ndarray:
        """``out[m] = min q⁺`` (``inf`` once nothing remains)."""
        return self._cached(
            "query_min",
            lambda: np.concatenate(
                [np.minimum.accumulate(self._ordered_query[::-1])[::-1], [np.inf]]
            ),
        )

    def _corner(self) -> np.ndarray:
        return self._cached(
            "corner_terms",
            lambda: np.maximum(self._ordered_query, 1.0 - self._ordered_query) ** 2,
        )

    @property
    def suffix_corner_mass(self) -> np.ndarray:
        """``out[m] = sum max(q_i, 1-q_i)²`` over the remaining dimensions."""
        return self._cached("corner_mass", lambda: _suffix_sums(self._corner()))

    @property
    def suffix_weighted_corner_mass(self) -> np.ndarray | None:
        """Weighted corner suffix, or ``None`` without weights."""
        if self._ordered_weights is None:
            return None
        return self._cached(
            "weighted_corner", lambda: _suffix_sums(self._ordered_weights * self._corner())
        )

    @property
    def suffix_inverse_weight_mass(self) -> np.ndarray | None:
        """``sum 1/w_i`` over remaining positive-weight dimensions, or ``None``."""
        if self._ordered_weights is None:
            return None

        def build() -> np.ndarray:
            positive = self._ordered_weights > 0.0
            inverse = np.divide(1.0, np.where(positive, self._ordered_weights, 1.0))
            return _suffix_sums(np.where(positive, inverse, 0.0))

        return self._cached("inverse_weight", build)

    @property
    def suffix_weight_max(self) -> np.ndarray | None:
        """``max w⁺`` per prefix length (0 once nothing remains), or ``None``."""
        if self._ordered_weights is None:
            return None
        return self._cached(
            "weight_max",
            lambda: np.concatenate(
                [np.maximum.accumulate(self._ordered_weights[::-1])[::-1], [0.0]]
            ),
        )

    @property
    def suffix_has_nonpositive_weight(self) -> np.ndarray | None:
        """Whether any remaining dimension has weight <= 0, or ``None``."""
        if self._ordered_weights is None:
            return None
        return self._cached(
            "has_nonpositive",
            lambda: np.concatenate(
                [np.logical_or.accumulate((self._ordered_weights <= 0.0)[::-1])[::-1], [False]]
            ),
        )


@dataclass
class PartialState:
    """Snapshot of a BOND run after processing ``num_processed`` dimensions.

    Attributes
    ----------
    query:
        The full query vector (all N dimensions, in original dimension order).
    order:
        Permutation of ``0..N-1``: the processing order of the dimensions.
    num_processed:
        How many dimensions (the prefix of ``order``) have been processed.
    partial_scores:
        ``S(x⁻, q⁻)`` for each surviving candidate, aligned with the
        candidate list maintained by the searcher.
    partial_value_sums:
        ``T(x⁻)`` per candidate, or ``None`` when not maintained.
    remaining_value_sums:
        ``T(x⁺)`` per candidate, or ``None`` when not maintained.
    weights:
        Per-dimension query weights for weighted search, or ``None``.
    order_statistics:
        Optional precomputed :class:`OrderStatistics` for blocked execution;
        the query-side accessors below use them when present and fall back to
        direct computation otherwise, so hand-built states keep working.
    """

    query: np.ndarray
    order: np.ndarray
    num_processed: int
    partial_scores: np.ndarray
    partial_value_sums: np.ndarray | None = None
    remaining_value_sums: np.ndarray | None = None
    weights: np.ndarray | None = None
    order_statistics: OrderStatistics | None = None

    @property
    def dimensionality(self) -> int:
        """Total number of dimensions N."""
        return int(self.query.shape[0])

    @property
    def num_candidates(self) -> int:
        """Number of surviving candidates."""
        return int(self.partial_scores.shape[0])

    @property
    def processed_dimensions(self) -> np.ndarray:
        """The dimension indices processed so far (prefix of the order)."""
        return self.order[: self.num_processed]

    @property
    def remaining_dimensions(self) -> np.ndarray:
        """The dimension indices not yet processed."""
        return self.order[self.num_processed:]

    @property
    def remaining_query(self) -> np.ndarray:
        """The query coefficients of the remaining dimensions (q⁺)."""
        return self.query[self.remaining_dimensions]

    @property
    def processed_query(self) -> np.ndarray:
        """The query coefficients of the processed dimensions (q⁻)."""
        return self.query[self.processed_dimensions]

    @property
    def num_remaining(self) -> int:
        """How many dimensions are still unprocessed."""
        return self.dimensionality - self.num_processed

    # -- O(1) query-side aggregates (blocked execution) -----------------------

    @property
    def remaining_query_mass(self) -> float:
        """``T(q⁺)``: total query mass of the remaining dimensions."""
        if self.order_statistics is not None:
            return float(self.order_statistics.suffix_query_mass[self.num_processed])
        return float(self.remaining_query.sum())

    @property
    def processed_query_mass(self) -> float:
        """``T(q⁻)``: total query mass of the processed dimensions."""
        if self.order_statistics is not None:
            stats = self.order_statistics.suffix_query_mass
            return float(stats[0] - stats[self.num_processed])
        return float(self.processed_query.sum())

    @property
    def remaining_query_min(self) -> float:
        """The smallest remaining query coefficient (``inf`` when none left)."""
        if self.order_statistics is not None:
            return float(self.order_statistics.suffix_query_min[self.num_processed])
        remaining = self.remaining_query
        return float(remaining.min()) if remaining.shape[0] else float("inf")

    @property
    def remaining_query_square_mass(self) -> float:
        """``sum q_i²`` over the remaining dimensions."""
        if self.order_statistics is not None:
            return float(self.order_statistics.suffix_query_square_mass[self.num_processed])
        remaining = self.remaining_query
        return float(np.sum(remaining * remaining))

    @property
    def remaining_corner_mass(self) -> float:
        """``sum max(q_i, 1-q_i)²`` over the remaining dimensions (Eq. 10)."""
        if self.order_statistics is not None:
            return float(self.order_statistics.suffix_corner_mass[self.num_processed])
        remaining = self.remaining_query
        return float(np.sum(np.maximum(remaining, 1.0 - remaining) ** 2))

    @property
    def remaining_weighted_corner_mass(self) -> float:
        """``sum w_i max(q_i, 1-q_i)²`` over the remaining dimensions."""
        stats = self.order_statistics
        if stats is not None and stats.suffix_weighted_corner_mass is not None:
            return float(stats.suffix_weighted_corner_mass[self.num_processed])
        remaining = self.remaining_query
        remaining_weights = self.weights[self.remaining_dimensions]
        return float(np.sum(remaining_weights * np.maximum(remaining, 1.0 - remaining) ** 2))

    @property
    def remaining_inverse_weight_mass(self) -> float:
        """``sum 1/w_i`` over remaining dimensions with positive weight."""
        stats = self.order_statistics
        if stats is not None and stats.suffix_inverse_weight_mass is not None:
            return float(stats.suffix_inverse_weight_mass[self.num_processed])
        remaining_weights = self.weights[self.remaining_dimensions]
        positive = remaining_weights > 0.0
        return float(np.sum(1.0 / remaining_weights[positive]))

    @property
    def remaining_weight_max(self) -> float:
        """The largest remaining weight (0 when none left)."""
        stats = self.order_statistics
        if stats is not None and stats.suffix_weight_max is not None:
            return float(stats.suffix_weight_max[self.num_processed])
        remaining_weights = self.weights[self.remaining_dimensions]
        return float(remaining_weights.max()) if remaining_weights.shape[0] else 0.0

    @property
    def remaining_has_nonpositive_weight(self) -> bool:
        """Whether any remaining dimension has weight <= 0."""
        stats = self.order_statistics
        if stats is not None and stats.suffix_has_nonpositive_weight is not None:
            return bool(stats.suffix_has_nonpositive_weight[self.num_processed])
        remaining_weights = self.weights[self.remaining_dimensions]
        return bool(np.any(remaining_weights <= 0.0))

    def validate(self) -> None:
        """Sanity-check internal consistency; raises :class:`BoundError`."""
        if self.order.shape[0] != self.dimensionality:
            raise BoundError("dimension order must be a permutation of all dimensions")
        if self.num_processed < 0 or self.num_processed > self.dimensionality:
            raise BoundError("num_processed outside 0..N")
        for label, array in (
            ("partial_value_sums", self.partial_value_sums),
            ("remaining_value_sums", self.remaining_value_sums),
        ):
            if array is not None and array.shape[0] != self.num_candidates:
                raise BoundError(f"{label} is not aligned with the candidate list")
        if self.weights is not None and self.weights.shape[0] != self.dimensionality:
            raise BoundError("weights must cover every dimension")


@dataclass
class RemainingBounds:
    """Per-candidate bounds on the remaining contribution ``S(x⁺, q⁺)``.

    ``lower`` and ``upper`` are either scalars (query-only bounds such as Hq
    and Eq produce the same value for every candidate) or arrays aligned with
    the candidate list.
    """

    lower: np.ndarray | float
    upper: np.ndarray | float

    def as_arrays(self, num_candidates: int) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast both bounds to arrays of length ``num_candidates``."""
        lower = np.broadcast_to(np.asarray(self.lower, dtype=np.float64), (num_candidates,))
        upper = np.broadcast_to(np.asarray(self.upper, dtype=np.float64), (num_candidates,))
        return np.array(lower), np.array(upper)


class PruningBound(abc.ABC):
    """Base class of all pruning criteria."""

    #: Short name used in experiment reports ("Hq", "Hh", "Eq", "Ev", "Ew").
    name: str = "bound"
    #: Whether the bound needs ``T(x⁻)`` maintained per candidate.
    needs_partial_value_sums: bool = False
    #: Whether the bound needs ``T(x⁺)`` maintained per candidate.
    needs_remaining_value_sums: bool = False

    @abc.abstractmethod
    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Bounds on the remaining contribution for every candidate."""

    def total_bounds(
        self,
        state: PartialState,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bounds ``(S_min, S_max)`` on the complete aggregate per candidate.

        The upper bound is clamped to at least the lower bound: both enclose
        the same true score, so ``max(upper, lower)`` is still a valid upper
        bound, and the clamp absorbs the last-ULP inversions that arise when
        the two bounds are computed by different formulas that are analytically
        equal (e.g. the weighted Appendix-A bounds with one remaining
        dimension).  Without it a candidate can prune *itself*: its lower
        bound lands one ULP above its own upper bound, the pruning constant
        kappa is set from that upper bound, and the true nearest neighbour is
        discarded.

        ``out`` optionally supplies two candidate-aligned buffers to write the
        bounds into (the searcher reuses per-search scratch so a pruning
        attempt allocates nothing); the values are identical either way.
        """
        state.validate()
        remaining = self.remaining_bounds(state)
        # Scalar bounds (Hq, Eq) broadcast for free in the additions below;
        # materialising them into per-candidate arrays first would cost two
        # collection-sized copies per pruning attempt.
        if out is None:
            total_lower = state.partial_scores + remaining.lower
            total_upper = np.maximum(state.partial_scores + remaining.upper, total_lower)
            return total_lower, total_upper
        total_lower, total_upper = out
        np.add(state.partial_scores, remaining.lower, out=total_lower)
        np.add(state.partial_scores, remaining.upper, out=total_upper)
        np.maximum(total_upper, total_lower, out=total_upper)
        return total_lower, total_upper

    def pruning_worthwhile(self, state: PartialState) -> bool:
        """Whether attempting to prune in this state can discard anything.

        Section 5.2 observes that criterion Hq cannot prune a single vector
        until ``T(q⁻) > 0.5``; bounds override this to let the searcher skip
        the (heap + selection) overhead of futile pruning attempts.  The
        default is to always try.
        """
        return True

    def bookkeeping_arrays(self) -> int:
        """How many extra per-vector arrays this bound requires (for reports)."""
        return int(self.needs_partial_value_sums) + int(self.needs_remaining_value_sums)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
