"""Protocol shared by all pruning bounds.

A bound receives the *partial state* of a BOND run — which dimensions have
been processed (and in what order), the query, the candidates' partial scores
and whatever per-vector bookkeeping the bound declared it needs — and returns
per-candidate lower/upper bounds on the contribution of the remaining
dimensions.  BOND turns these into bounds on the complete aggregate by adding
the partial scores (all the paper's aggregates are sums over dimensions).

Bounds declare their bookkeeping needs through two flags:

* ``needs_partial_value_sums`` — the bound needs ``T(x⁻)``, the sum of each
  candidate's coefficients over the *processed* dimensions (criterion Hh);
* ``needs_remaining_value_sums`` — the bound needs ``T(x⁺)``, the sum over
  the *remaining* dimensions (criteria Ev and the weighted bound); the paper
  materialises ``T(v)`` once and updates it as dimensions are consumed.

The distinction matters for the cost accounting: maintaining these sums is
exactly the "additional bookkeeping" the paper weighs against the better
pruning of the richer criteria.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import BoundError


@dataclass
class PartialState:
    """Snapshot of a BOND run after processing ``num_processed`` dimensions.

    Attributes
    ----------
    query:
        The full query vector (all N dimensions, in original dimension order).
    order:
        Permutation of ``0..N-1``: the processing order of the dimensions.
    num_processed:
        How many dimensions (the prefix of ``order``) have been processed.
    partial_scores:
        ``S(x⁻, q⁻)`` for each surviving candidate, aligned with the
        candidate list maintained by the searcher.
    partial_value_sums:
        ``T(x⁻)`` per candidate, or ``None`` when not maintained.
    remaining_value_sums:
        ``T(x⁺)`` per candidate, or ``None`` when not maintained.
    weights:
        Per-dimension query weights for weighted search, or ``None``.
    """

    query: np.ndarray
    order: np.ndarray
    num_processed: int
    partial_scores: np.ndarray
    partial_value_sums: np.ndarray | None = None
    remaining_value_sums: np.ndarray | None = None
    weights: np.ndarray | None = None

    @property
    def dimensionality(self) -> int:
        """Total number of dimensions N."""
        return int(self.query.shape[0])

    @property
    def num_candidates(self) -> int:
        """Number of surviving candidates."""
        return int(self.partial_scores.shape[0])

    @property
    def processed_dimensions(self) -> np.ndarray:
        """The dimension indices processed so far (prefix of the order)."""
        return self.order[: self.num_processed]

    @property
    def remaining_dimensions(self) -> np.ndarray:
        """The dimension indices not yet processed."""
        return self.order[self.num_processed:]

    @property
    def remaining_query(self) -> np.ndarray:
        """The query coefficients of the remaining dimensions (q⁺)."""
        return self.query[self.remaining_dimensions]

    @property
    def processed_query(self) -> np.ndarray:
        """The query coefficients of the processed dimensions (q⁻)."""
        return self.query[self.processed_dimensions]

    def validate(self) -> None:
        """Sanity-check internal consistency; raises :class:`BoundError`."""
        if self.order.shape[0] != self.dimensionality:
            raise BoundError("dimension order must be a permutation of all dimensions")
        if self.num_processed < 0 or self.num_processed > self.dimensionality:
            raise BoundError("num_processed outside 0..N")
        for label, array in (
            ("partial_value_sums", self.partial_value_sums),
            ("remaining_value_sums", self.remaining_value_sums),
        ):
            if array is not None and array.shape[0] != self.num_candidates:
                raise BoundError(f"{label} is not aligned with the candidate list")
        if self.weights is not None and self.weights.shape[0] != self.dimensionality:
            raise BoundError("weights must cover every dimension")


@dataclass
class RemainingBounds:
    """Per-candidate bounds on the remaining contribution ``S(x⁺, q⁺)``.

    ``lower`` and ``upper`` are either scalars (query-only bounds such as Hq
    and Eq produce the same value for every candidate) or arrays aligned with
    the candidate list.
    """

    lower: np.ndarray | float
    upper: np.ndarray | float

    def as_arrays(self, num_candidates: int) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast both bounds to arrays of length ``num_candidates``."""
        lower = np.broadcast_to(np.asarray(self.lower, dtype=np.float64), (num_candidates,))
        upper = np.broadcast_to(np.asarray(self.upper, dtype=np.float64), (num_candidates,))
        return np.array(lower), np.array(upper)


class PruningBound(abc.ABC):
    """Base class of all pruning criteria."""

    #: Short name used in experiment reports ("Hq", "Hh", "Eq", "Ev", "Ew").
    name: str = "bound"
    #: Whether the bound needs ``T(x⁻)`` maintained per candidate.
    needs_partial_value_sums: bool = False
    #: Whether the bound needs ``T(x⁺)`` maintained per candidate.
    needs_remaining_value_sums: bool = False

    @abc.abstractmethod
    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Bounds on the remaining contribution for every candidate."""

    def total_bounds(self, state: PartialState) -> tuple[np.ndarray, np.ndarray]:
        """Bounds ``(S_min, S_max)`` on the complete aggregate per candidate."""
        state.validate()
        remaining = self.remaining_bounds(state)
        lower, upper = remaining.as_arrays(state.num_candidates)
        return state.partial_scores + lower, state.partial_scores + upper

    def pruning_worthwhile(self, state: PartialState) -> bool:
        """Whether attempting to prune in this state can discard anything.

        Section 5.2 observes that criterion Hq cannot prune a single vector
        until ``T(q⁻) > 0.5``; bounds override this to let the searcher skip
        the (heap + selection) overhead of futile pruning attempts.  The
        default is to always try.
        """
        return True

    def bookkeeping_arrays(self) -> int:
        """How many extra per-vector arrays this bound requires (for reports)."""
        return int(self.needs_partial_value_sums) + int(self.needs_remaining_value_sums)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
