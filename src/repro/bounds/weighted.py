"""Pruning bounds for weighted squared Euclidean distance (Appendix A).

The weighted distance ``sum_i w_i (v_i - q_i)^2`` stretches every axis by
``sqrt(w_i)`` (Figure 13).  Appendix A derives a lower bound (Equation 15)
and an upper bound (Equation 14) on the remaining contribution given
``T(v⁺)``.

**Lower bound (Equation 15).**  Minimising ``sum w_i d_i^2`` subject to
``sum d_i = T(v⁺) - T(q⁺)`` is a weighted least-norm problem whose optimum is
``(T(v⁺) - T(q⁺))² / sum_i (1 / w_i)`` — exactly the paper's Equation 15 once
the product notation is simplified.  If any remaining dimension has weight
zero the bound degenerates to 0 (that dimension can absorb any difference for
free), which is also what the formula yields in the limit.

**Upper bound.**  Equation 14 as printed assumes the remaining mass should be
piled onto the dimensions with the smallest ``w_i q_i²``; with strongly
non-uniform weights that choice is not always the true maximiser, so using it
verbatim could under-estimate the worst case and prune unsafely.  This
implementation therefore uses a *provably safe* upper bound — the minimum of

* the box-corner bound ``sum_i w_i · max(q_i, 1 - q_i)²`` (ignores the mass
  constraint entirely), and
* ``max(w⁺) ·`` (the exact unweighted Lemma 1 maximum for ``T(v⁺)``), which
  dominates the weighted distance because every weight is at most
  ``max(w⁺)``

— and exposes the paper's literal Equation 14 as ``paper_equation14`` for
comparison experiments.  The substitution is recorded in DESIGN.md; for the
weight distributions of Figure 11 (skewed but applied to the *query*
dimensions that are processed first) the safe bound prunes almost as well.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import PartialState, PruningBound, RemainingBounds
from repro.bounds.euclidean import lemma1_upper_bound
from repro.errors import BoundError


class WeightedEuclideanBound(PruningBound):
    """Bounds for weighted squared Euclidean distance (criterion Ew)."""

    name = "Ew"
    needs_remaining_value_sums = True

    def __init__(self, *, use_paper_upper_bound: bool = False) -> None:
        self._use_paper_upper_bound = use_paper_upper_bound

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Per-candidate bounds using the weights of the remaining dimensions."""
        if state.weights is None:
            raise BoundError("the weighted bound needs query weights in the partial state")
        if state.remaining_value_sums is None:
            raise BoundError("the weighted bound needs T(v+) maintained per candidate")

        remaining_dimensions = state.remaining_dimensions
        remaining_query = state.query[remaining_dimensions]
        remaining_weights = state.weights[remaining_dimensions]
        remaining_sums = state.remaining_value_sums
        if remaining_dimensions.shape[0] == 0:
            zeros = np.zeros_like(remaining_sums)
            return RemainingBounds(lower=zeros, upper=zeros)

        lower = self._lower_bound(remaining_query, remaining_weights, remaining_sums)
        if self._use_paper_upper_bound:
            upper = self.paper_equation14(remaining_query, remaining_weights, remaining_sums)
        else:
            upper = self._safe_upper_bound(remaining_query, remaining_weights, remaining_sums)
        return RemainingBounds(lower=lower, upper=upper)

    # -- lower bound (Equation 15) ---------------------------------------------

    @staticmethod
    def _lower_bound(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        total_difference = remaining_sums - float(remaining_query.sum())
        if np.any(remaining_weights <= 0.0):
            # A zero-weight dimension can absorb the whole difference for free.
            return np.zeros_like(remaining_sums)
        inverse_weight_sum = float(np.sum(1.0 / remaining_weights))
        return (total_difference * total_difference) / inverse_weight_sum

    # -- safe upper bound ---------------------------------------------------------

    @staticmethod
    def _safe_upper_bound(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        corner = float(
            np.sum(remaining_weights * np.maximum(remaining_query, 1.0 - remaining_query) ** 2)
        )
        maximum_weight = float(remaining_weights.max())
        unweighted = lemma1_upper_bound(remaining_query, remaining_sums)
        return np.minimum(corner, maximum_weight * unweighted)

    # -- the paper's Equation 14, for comparison ----------------------------------

    @staticmethod
    def paper_equation14(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        """The literal upper bound of Equation 14 (order by decreasing w·q²).

        Provided for reproducing the paper's criterion exactly in comparison
        experiments; see the module docstring for why the default searcher
        uses the safe bound instead.
        """
        order = np.argsort(remaining_weights * remaining_query**2)[::-1]
        query_sorted = remaining_query[order]
        weights_sorted = remaining_weights[order]
        num_remaining = query_sorted.shape[0]

        weighted_q2 = weights_sorted * query_sorted**2
        weighted_1m2 = weights_sorted * (1.0 - query_sorted) ** 2
        prefix_q2 = np.concatenate([[0.0], np.cumsum(weighted_q2)])
        suffix_1m = np.concatenate([np.cumsum(weighted_1m2[::-1])[::-1], [0.0]])

        clipped = np.clip(np.asarray(remaining_sums, dtype=np.float64), 0.0, float(num_remaining))
        filled = np.floor(clipped).astype(np.int64)
        fractional = clipped - filled
        fractional_position = num_remaining - filled

        bounds = np.empty_like(clipped)
        all_filled = fractional_position == 0
        bounds[all_filled] = suffix_1m[0]
        partial = ~all_filled
        if np.any(partial):
            positions = fractional_position[partial]
            bounds[partial] = (
                prefix_q2[positions - 1]
                + weights_sorted[positions - 1]
                * (fractional[partial] - query_sorted[positions - 1]) ** 2
                + suffix_1m[positions]
            )
        return bounds
