"""Pruning bounds for weighted squared Euclidean distance (Appendix A).

The weighted distance ``sum_i w_i (v_i - q_i)^2`` stretches every axis by
``sqrt(w_i)`` (Figure 13).  Appendix A derives a lower bound (Equation 15)
and an upper bound (Equation 14) on the remaining contribution given
``T(v⁺)``.

**Lower bound (Equation 15).**  Minimising ``sum w_i d_i^2`` subject to
``sum d_i = T(v⁺) - T(q⁺)`` is a weighted least-norm problem whose optimum is
``(T(v⁺) - T(q⁺))² / sum_i (1 / w_i)`` — exactly the paper's Equation 15 once
the product notation is simplified.  If any remaining dimension has weight
zero the bound degenerates to 0 (that dimension can absorb any difference for
free), which is also what the formula yields in the limit.

**Upper bound.**  Equation 14 as printed assumes the remaining mass should be
piled onto the dimensions with the smallest ``w_i q_i²``; with strongly
non-uniform weights that choice is not always the true maximiser, so using it
verbatim could under-estimate the worst case and prune unsafely.  This
implementation therefore uses a *provably safe* upper bound — the minimum of

* the box-corner bound ``sum_i w_i · max(q_i, 1 - q_i)²`` (ignores the mass
  constraint entirely), and
* ``max(w⁺) ·`` (the exact unweighted Lemma 1 maximum for ``T(v⁺)``), which
  dominates the weighted distance because every weight is at most
  ``max(w⁺)``

— and exposes the paper's literal Equation 14 as ``paper_equation14`` for
comparison experiments.  The substitution is recorded in DESIGN.md; for the
weight distributions of Figure 11 (skewed but applied to the *query*
dimensions that are processed first) the safe bound prunes almost as well.

**Floating-point safety.**  With a single remaining dimension the lower and
upper bounds above are *analytically equal* (the remaining coordinate is
fully determined by ``T(v⁺)``), but they are computed by different formulas
whose roundings differ in the last ULP.  When the lower bound lands one ULP
above the upper bound, the candidate prunes itself — including the true
nearest neighbour, which made the weighted searcher return empty results.
:meth:`~repro.bounds.base.PruningBound.total_bounds` therefore clamps the
upper bound to at least the lower bound, which is always sound because both
enclose the same true score.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import PartialState, PruningBound, RemainingBounds
from repro.bounds.euclidean import lemma1_upper_bound
from repro.errors import BoundError


class WeightedEuclideanBound(PruningBound):
    """Bounds for weighted squared Euclidean distance (criterion Ew)."""

    name = "Ew"
    needs_remaining_value_sums = True

    def __init__(self, *, use_paper_upper_bound: bool = False) -> None:
        self._use_paper_upper_bound = use_paper_upper_bound

    def remaining_bounds(self, state: PartialState) -> RemainingBounds:
        """Per-candidate bounds using the weights of the remaining dimensions.

        Query-side aggregates (remaining mass, weighted corner distance,
        ``sum 1/w``, ``max w``) come from the blocked partial state, which
        serves them in O(1) from per-order suffix statistics when the searcher
        precomputed them; only Lemma 1 still needs the remaining query vector.
        """
        if state.weights is None:
            raise BoundError("the weighted bound needs query weights in the partial state")
        if state.remaining_value_sums is None:
            raise BoundError("the weighted bound needs T(v+) maintained per candidate")

        remaining_sums = state.remaining_value_sums
        if state.num_remaining == 0:
            zeros = np.zeros_like(remaining_sums)
            return RemainingBounds(lower=zeros, upper=zeros)

        # Lower bound (Equation 15) from the O(1) blocked-state aggregates.
        if state.remaining_has_nonpositive_weight:
            # A zero-weight dimension can absorb the whole difference for free.
            lower = np.zeros_like(remaining_sums)
        else:
            total_difference = remaining_sums - state.remaining_query_mass
            lower = (total_difference * total_difference) / state.remaining_inverse_weight_mass

        if self._use_paper_upper_bound:
            remaining_dimensions = state.remaining_dimensions
            upper = self.paper_equation14(
                state.query[remaining_dimensions],
                state.weights[remaining_dimensions],
                remaining_sums,
            )
        else:
            # Safe upper bound: min(box corner, max(w+) * unweighted Lemma 1).
            unweighted = lemma1_upper_bound(state.remaining_query, remaining_sums)
            upper = np.minimum(
                state.remaining_weighted_corner_mass,
                state.remaining_weight_max * unweighted,
            )
        return RemainingBounds(lower=lower, upper=upper)

    # -- lower bound (Equation 15), standalone formula ---------------------------

    @staticmethod
    def _lower_bound(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        total_difference = remaining_sums - float(remaining_query.sum())
        if np.any(remaining_weights <= 0.0):
            # A zero-weight dimension can absorb the whole difference for free.
            return np.zeros_like(remaining_sums)
        inverse_weight_sum = float(np.sum(1.0 / remaining_weights))
        return (total_difference * total_difference) / inverse_weight_sum

    # -- safe upper bound, standalone formula -------------------------------------

    @staticmethod
    def _safe_upper_bound(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        corner = float(
            np.sum(remaining_weights * np.maximum(remaining_query, 1.0 - remaining_query) ** 2)
        )
        maximum_weight = float(remaining_weights.max())
        unweighted = lemma1_upper_bound(remaining_query, remaining_sums)
        return np.minimum(corner, maximum_weight * unweighted)

    # -- the paper's Equation 14, for comparison ----------------------------------

    @staticmethod
    def paper_equation14(
        remaining_query: np.ndarray,
        remaining_weights: np.ndarray,
        remaining_sums: np.ndarray,
    ) -> np.ndarray:
        """The literal upper bound of Equation 14 (order by decreasing w·q²).

        Provided for reproducing the paper's criterion exactly in comparison
        experiments; see the module docstring for why the default searcher
        uses the safe bound instead.
        """
        order = np.argsort(remaining_weights * remaining_query**2)[::-1]
        query_sorted = remaining_query[order]
        weights_sorted = remaining_weights[order]
        num_remaining = query_sorted.shape[0]

        weighted_q2 = weights_sorted * query_sorted**2
        weighted_1m2 = weights_sorted * (1.0 - query_sorted) ** 2
        prefix_q2 = np.concatenate([[0.0], np.cumsum(weighted_q2)])
        suffix_1m = np.concatenate([np.cumsum(weighted_1m2[::-1])[::-1], [0.0]])

        clipped = np.clip(np.asarray(remaining_sums, dtype=np.float64), 0.0, float(num_remaining))
        filled = np.floor(clipped).astype(np.int64)
        fractional = clipped - filled
        fractional_position = num_remaining - filled

        bounds = np.empty_like(clipped)
        all_filled = fractional_position == 0
        bounds[all_filled] = suffix_1m[0]
        partial = ~all_filled
        if np.any(partial):
            positions = fractional_position[partial]
            bounds[partial] = (
                prefix_q2[positions - 1]
                + weights_sorted[positions - 1]
                * (fractional[partial] - query_sorted[positions - 1]) ** 2
                + suffix_1m[positions]
            )
        return bounds
