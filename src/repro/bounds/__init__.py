"""Pruning bounds for BOND (Section 4 and Appendix A).

After processing the first ``m`` dimensions (in some order), BOND knows for
every surviving vector its partial score ``S(x⁻, q⁻)``.  A *pruning bound*
supplies, per vector, a lower and an upper bound on the contribution
``S(x⁺, q⁺)`` of the still-unseen dimensions; adding the partial score gives
the bounds ``S_min`` / ``S_max`` on the complete aggregate that Algorithm 2
prunes with.

Four bounds from the paper are provided, plus the weighted-Euclidean bounds of
Appendix A:

=========  ==========================  =======================================
Criterion  Metric                      State needed besides partial scores
=========  ==========================  =======================================
``Hq``     histogram intersection      nothing (query-only bounds, Eq. 5/6)
``Hh``     histogram intersection      ``T(h⁻)`` per vector (Eq. 7/8/9)
``Eq``     squared Euclidean           nothing (query-only bound, Eq. 10)
``Ev``     squared Euclidean           ``T(v⁺)`` per vector (Lemmas 1 and 2)
``Ew``     weighted squared Euclidean  ``T(v⁺)`` per vector (Eq. 14/15)
=========  ==========================  =======================================
"""

from repro.bounds.base import PartialState, PruningBound, RemainingBounds
from repro.bounds.histogram import HhBound, HqBound
from repro.bounds.euclidean import EqBound, EvBound
from repro.bounds.weighted import WeightedEuclideanBound

__all__ = [
    "EqBound",
    "EvBound",
    "HhBound",
    "HqBound",
    "PartialState",
    "PruningBound",
    "RemainingBounds",
    "WeightedEuclideanBound",
]
