"""Precomputed similarity network (the Section 2 straw-man).

The brute-force alternative sketched in Related Work precomputes, for every
object in the collection, its k nearest neighbours — a "similarity network".
Queries against indexed objects then cost a single lookup, but the structure
has the drawbacks the paper lists: it cannot be updated incrementally, it
fixes k and the metric at build time, it supports neither weighted nor
subspace queries, and it cannot answer queries for objects outside the
collection.  It is included so examples and ablations can quantify those
trade-offs against BOND.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.metrics.base import Metric
from repro.metrics.histogram import HistogramIntersection


class SimilarityNetwork:
    """A precomputed k-NN graph over a fixed collection."""

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        neighbours: int = 10,
        metric: Metric | None = None,
        batch_size: int = 512,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise QueryError("the similarity network needs a non-empty 2-D matrix")
        if neighbours < 1:
            raise QueryError("the neighbourhood size must be at least 1")
        self._metric = metric if metric is not None else HistogramIntersection()
        self._neighbours = min(neighbours, matrix.shape[0] - 1) if matrix.shape[0] > 1 else 0
        self._matrix = matrix
        self._neighbour_oids, self._neighbour_scores = self._build(batch_size)

    def _build(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """All-pairs scoring in batches; O(n^2) time and O(n*k) space."""
        count = self._matrix.shape[0]
        width = self._neighbours
        neighbour_oids = np.zeros((count, width), dtype=np.int64)
        neighbour_scores = np.zeros((count, width), dtype=np.float64)
        for start in range(0, count, batch_size):
            stop = min(start + batch_size, count)
            for row in range(start, stop):
                scores = self._metric.score(self._matrix, self._matrix[row])
                order = self._metric.best_first(scores)
                # Skip the object itself (always its own best match).
                order = order[order != row][:width]
                neighbour_oids[row] = order
                neighbour_scores[row] = scores[order]
        return neighbour_oids, neighbour_scores

    @property
    def neighbourhood_size(self) -> int:
        """The fixed number of neighbours stored per object."""
        return self._neighbours

    def neighbours_of(self, oid: int, k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The precomputed neighbours of an indexed object.

        Raises :class:`QueryError` when ``k`` exceeds the precomputed
        neighbourhood size — the structural limitation the paper points out.
        """
        if oid < 0 or oid >= self._matrix.shape[0]:
            raise QueryError("the similarity network only answers queries for indexed objects")
        k = self._neighbours if k is None else k
        if k > self._neighbours:
            raise QueryError(
                f"the similarity network was built for {self._neighbours} neighbours; "
                f"{k} were requested (rebuild required)"
            )
        return self._neighbour_oids[oid, :k].copy(), self._neighbour_scores[oid, :k].copy()

    def supports_query_vector(self) -> bool:
        """Whether ad-hoc query vectors are supported (they are not)."""
        return False
