"""A bulk-loaded R-tree with best-first k-NN search.

The paper's motivation (Section 2) is that spatial access methods break down
in high-dimensional spaces: the bounding boxes overlap so much that a k-NN
search has to visit most of the tree, at which point a sequential scan is
faster.  This module provides the representative SAM so that breakdown can be
demonstrated (the `abl-sam` benchmark): an R-tree bulk-loaded with the
Sort-Tile-Recursive (STR) method and queried with the classic best-first
(priority-queue on MINDIST) k-NN algorithm of Roussopoulos et al. / Hjaltason
& Samet.

Node accesses are charged to the store's cost model so the I/O comparison
against BOND and sequential scan is consistent.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.engine.cost import CostModel, DOUBLE_BYTES
from repro.errors import QueryError
from repro.metrics.euclidean import SquaredEuclidean


@dataclass
class _Node:
    """An R-tree node: a bounding box over either child nodes or data entries."""

    lower: np.ndarray
    upper: np.ndarray
    children: list["_Node"] = field(default_factory=list)
    entry_oids: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.entry_oids is not None


class RTreeIndex:
    """STR bulk-loaded R-tree over a vector collection (Euclidean metric only)."""

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        leaf_capacity: int = 64,
        fanout: int = 16,
        cost: CostModel | None = None,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise QueryError("the R-tree needs a non-empty 2-D vector matrix")
        if leaf_capacity < 2 or fanout < 2:
            raise QueryError("leaf_capacity and fanout must be at least 2")
        self._matrix = matrix
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout
        self._cost = cost if cost is not None else CostModel()
        self._metric = SquaredEuclidean(require_unit_box=False)
        self._node_count = 0
        self._root = self._bulk_load(np.arange(matrix.shape[0], dtype=np.int64))

    # -- construction ----------------------------------------------------------

    def _bulk_load(self, oids: np.ndarray) -> _Node:
        """Sort-Tile-Recursive packing of the given OIDs into a tree."""
        leaves = self._pack_level(oids, self._leaf_capacity, leaf=True)
        level = leaves
        while len(level) > 1:
            level = self._pack_nodes(level, self._fanout)
        return level[0]

    def _pack_level(self, oids: np.ndarray, capacity: int, *, leaf: bool) -> list[_Node]:
        """Pack data OIDs into leaves by recursively sorting along dimensions (STR)."""
        points = self._matrix[oids]
        groups = self._str_partition(points, oids, capacity)
        nodes = []
        for group in groups:
            group_points = self._matrix[group]
            nodes.append(
                _Node(
                    lower=group_points.min(axis=0),
                    upper=group_points.max(axis=0),
                    entry_oids=group,
                )
            )
            self._node_count += 1
        return nodes

    def _str_partition(self, points: np.ndarray, oids: np.ndarray, capacity: int) -> list[np.ndarray]:
        """Recursively tile the point set into groups of at most ``capacity``."""
        count = points.shape[0]
        if count <= capacity:
            return [oids]
        # Sort along the dimension with the largest spread and cut into slabs
        # whose sizes are multiples of the capacity, then recurse on each slab
        # using the remaining dimensions (a simplified multi-dimensional STR).
        spreads = points.max(axis=0) - points.min(axis=0)
        dimension = int(np.argmax(spreads))
        order = np.argsort(points[:, dimension], kind="stable")
        slab_count = max(1, int(np.ceil(np.sqrt(count / capacity))))
        slab_size = int(np.ceil(count / slab_count))
        groups: list[np.ndarray] = []
        for start in range(0, count, slab_size):
            slab = order[start: start + slab_size]
            if slab.shape[0] <= capacity:
                groups.append(oids[slab])
            else:
                groups.extend(self._str_partition(points[slab], oids[slab], capacity))
        return groups

    def _pack_nodes(self, nodes: list[_Node], fanout: int) -> list[_Node]:
        """Group child nodes into parents by their box centres (STR on centres)."""
        centres = np.stack([(node.lower + node.upper) / 2.0 for node in nodes], axis=0)
        order = np.argsort(centres[:, int(np.argmax(centres.max(axis=0) - centres.min(axis=0)))])
        parents = []
        for start in range(0, len(nodes), fanout):
            group = [nodes[int(index)] for index in order[start: start + fanout]]
            lower = np.min(np.stack([node.lower for node in group]), axis=0)
            upper = np.max(np.stack([node.upper for node in group]), axis=0)
            parents.append(_Node(lower=lower, upper=upper, children=group))
            self._node_count += 1
        return parents

    # -- queries -----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return self._node_count

    @property
    def cost(self) -> CostModel:
        """The cost model node accesses are charged to."""
        return self._cost

    def search(
        self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> SearchResult:
        """Best-first k-NN (squared Euclidean distance, exact).

        ``trace`` optionally receives the (degenerate) candidate curve of the
        tree traversal, matching the uniform :class:`repro.api.Searcher`
        signature: the best-first algorithm maintains a priority queue rather
        than a shrinking candidate set, so the curve records only the start
        and end points.
        """
        started = time.perf_counter()
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self._matrix.shape[1],):
            raise QueryError("query dimensionality does not match the index")
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._matrix.shape[0])
        checkpoint = self._cost.checkpoint()

        nodes_visited = 0
        # Priority queue of (mindist, tiebreak, kind, payload).
        counter = 0
        queue: list[tuple[float, int, str, object]] = [(0.0, counter, "node", self._root)]
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        while queue:
            mindist, _, kind, payload = heapq.heappop(queue)
            if len(results) == k and mindist > -results[0][0]:
                break
            if kind == "vector":
                oid = int(payload)  # type: ignore[arg-type]
                distance = mindist
                if len(results) < k:
                    heapq.heappush(results, (-distance, oid))
                elif distance < -results[0][0]:
                    heapq.heapreplace(results, (-distance, oid))
                continue
            node: _Node = payload  # type: ignore[assignment]
            nodes_visited += 1
            self._cost.charge_random_access(
                int(node.lower.shape[0] * 2), DOUBLE_BYTES
            )
            if node.is_leaf:
                oids = node.entry_oids
                vectors = self._matrix[oids]
                self._cost.charge_scan(vectors.size, DOUBLE_BYTES)
                distances = self._metric.score(vectors, query)
                self._cost.charge_arithmetic(vectors.size * 3)
                for oid, distance in zip(oids, distances):
                    counter += 1
                    heapq.heappush(queue, (float(distance), counter, "vector", int(oid)))
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(queue, (self._mindist(query, child), counter, "node", child))

        ordered = sorted(((-negated, oid) for negated, oid in results))
        oids = np.asarray([oid for _, oid in ordered], dtype=np.int64)
        scores = np.asarray([distance for distance, _ in ordered], dtype=np.float64)
        trace = trace if trace is not None else PruningTrace()
        trace.record(0, self._matrix.shape[0])
        trace.record(self._matrix.shape[1], int(oids.shape[0]))
        result = SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=self._matrix.shape[1],
            full_scan_dimensions=0,
            candidate_trace=trace,
            cost=self._cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )
        result.nodes_visited = nodes_visited  # type: ignore[attr-defined]
        return result

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a batch of queries with a per-query loop.

        Best-first traversal follows each query's own MINDIST frontier
        through the tree, so there is no fragment read to share between
        queries; the batch entry point exists so the index satisfies the
        uniform :class:`repro.api.Searcher` protocol.  Each per-query result
        is exactly what :meth:`search` returns.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        checkpoint = self._cost.checkpoint()
        results = [self.search(query, k) for query in query_matrix]
        return BatchSearchResult(
            results=results,
            cost=self._cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    @staticmethod
    def _mindist(query: np.ndarray, node: _Node) -> float:
        """Squared distance from the query to the nearest point of the node's box."""
        below = np.clip(node.lower - query, 0.0, None)
        above = np.clip(query - node.upper, 0.0, None)
        gap = np.maximum(below, above)
        return float(np.dot(gap, gap))
