"""The Vector-Approximation File (VA-file) of Weber, Schek & Blott.

The VA-file accepts that sequential scan is the realistic access pattern in
high dimensions and shrinks what has to be scanned: every coefficient is
replaced by a small (here: 8-bit) cell number on a per-dimension grid.  A
query is answered in two steps:

1. **Filter** — scan the approximation of *every* vector (all dimensions),
   computing per-vector lower and upper bounds of its score from the cell
   boundaries; vectors whose best case cannot beat the k-th best worst case
   are dropped.
2. **Refine** — fetch the exact vectors of the survivors, compute exact
   scores, return the top k.

The filter step is cheap because it reads one byte instead of eight per
coefficient; the refinement step is cheap because few vectors survive.  BOND
applied to the same approximations (Section 7.4) reads *fewer of the
approximate fragments* because it prunes dimension-wise, which is where its
3-5x advantage in Table 4 comes from; both methods return identical candidate
sets semantics-wise (no false dismissals).
"""

from __future__ import annotations

import time

import numpy as np

from repro._compat import apply_legacy_positionals
from repro.core.compressed import contribution_interval
from repro.core.result import BatchSearchResult, PruningTrace, SearchResult
from repro.errors import QueryError
from repro.metrics.base import Metric
from repro.metrics.euclidean import SquaredEuclidean
from repro.storage.compressed import CompressedStore


class VAFile:
    """Filter-and-refine search over per-dimension scalar quantisation."""

    def __init__(self, store: CompressedStore, *legacy, metric: Metric | None = None) -> None:
        (metric,) = apply_legacy_positionals(
            "VAFile(store, *, metric=...)", legacy, ("metric",), (metric,)
        )
        self._store = store
        self._metric = metric if metric is not None else SquaredEuclidean()

    @property
    def store(self) -> CompressedStore:
        """The compressed store holding the approximations and the exact data."""
        return self._store

    @property
    def metric(self) -> Metric:
        """The similarity / distance metric in use."""
        return self._metric

    def search(
        self, query: np.ndarray, k: int, *, trace: PruningTrace | None = None
    ) -> SearchResult:
        """Return the exact k nearest neighbours via the two-step VA-file plan.

        ``trace`` optionally receives the filter's two-point pruning curve
        (everything in, survivors out), matching the uniform
        :class:`repro.api.Searcher` signature.
        """
        started = time.perf_counter()
        query = self._metric.validate_query(query)
        if query.shape[0] != self._store.dimensionality:
            raise QueryError("query dimensionality does not match the store")
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)
        cost = self._store.cost
        checkpoint = cost.checkpoint()

        lower_scores, upper_scores = self._filter_bounds(query)
        candidates = self._select_candidates(lower_scores, upper_scores, k)
        oids, scores = self._refine(query, candidates, k)

        return SearchResult(
            oids=oids,
            scores=scores,
            dimensions_processed=self._store.dimensionality,
            full_scan_dimensions=self._store.dimensionality,
            candidate_trace=self._filter_trace(candidates, into=trace),
            cost=cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    def search_batch(self, queries: np.ndarray, k: int) -> BatchSearchResult:
        """Answer a whole batch of queries with one shared approximation pass.

        The filter step of the VA-file reads every approximate coefficient
        regardless of the query, so a batch needs the approximation scanned
        only *once*: per dimension, the (lower, upper) value bounds are
        materialised from the cell boundaries one time and every query's
        contribution interval is accumulated from them.  Each per-query
        result is bitwise identical to :meth:`search`; only the storage
        accounting differs (the shared scan is charged once instead of once
        per query).

        Parameters
        ----------
        queries:
            ``(batch, N)`` matrix of query vectors (a single 1-D query is
            accepted and treated as a batch of one).
        k:
            Number of neighbours per query; clamped to the collection size.

        Returns
        -------
        A :class:`~repro.core.result.BatchSearchResult` with one result per
        query in submission order; cost and wall-clock time are accounted at
        batch level because the approximation pass is shared.
        """
        started = time.perf_counter()
        query_matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if query_matrix.ndim != 2:
            raise QueryError(f"queries must form a 2-D matrix, got shape {query_matrix.shape}")
        validated = [self._metric.validate_query(query) for query in query_matrix]
        for query in validated:
            if query.shape[0] != self._store.dimensionality:
                raise QueryError("query dimensionality does not match the store")
        if k <= 0:
            raise QueryError("k must be at least 1")
        k = min(k, self._store.cardinality)
        cost = self._store.cost
        checkpoint = cost.checkpoint()

        lower_scores, upper_scores = self._filter_bounds_batch(validated)
        results = []
        for index, query in enumerate(validated):
            candidates = self._select_candidates(lower_scores[index], upper_scores[index], k)
            oids, scores = self._refine(query, candidates, k)
            results.append(
                SearchResult(
                    oids=oids,
                    scores=scores,
                    dimensions_processed=self._store.dimensionality,
                    full_scan_dimensions=self._store.dimensionality,
                    candidate_trace=self._filter_trace(candidates),
                )
            )
        return BatchSearchResult(
            results=results,
            cost=cost.since(checkpoint),
            elapsed_seconds=time.perf_counter() - started,
        )

    def filter_candidate_count(self, query: np.ndarray, k: int) -> int:
        """Number of vectors surviving the filter step (for Table 4 style reports).

        A diagnostic probe: the filter runs against the shared cost model, so
        its charges are rolled back afterwards and reported experiment
        counters stay untouched.
        """
        query = self._metric.validate_query(query)
        k = min(max(k, 1), self._store.cardinality)
        cost = self._store.cost
        checkpoint = cost.checkpoint()
        try:
            lower_scores, upper_scores = self._filter_bounds(query)
            return int(self._select_candidates(lower_scores, upper_scores, k).shape[0])
        finally:
            cost.restore(checkpoint)

    # -- internals ----------------------------------------------------------------

    def _filter_trace(self, candidates: np.ndarray, *, into: PruningTrace | None = None) -> PruningTrace:
        """The VA-file's two-point pruning curve: everything in, survivors out.

        Recording the filter's survivor count on the result lets Table 4
        style reports read it for free instead of re-running the filter via
        :meth:`filter_candidate_count`.  ``into`` records the curve into a
        caller-supplied trace instead of a fresh one.
        """
        trace = into if into is not None else PruningTrace()
        trace.record(0, self._store.cardinality)
        trace.record(self._store.dimensionality, int(candidates.shape[0]))
        return trace

    def _filter_bounds(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-vector lower/upper score bounds from the full approximation scan."""
        cost = self._store.cost
        cardinality = self._store.cardinality
        lower_scores = np.zeros(cardinality, dtype=np.float64)
        upper_scores = np.zeros(cardinality, dtype=np.float64)
        for dimension in range(self._store.dimensionality):
            value_lower, value_upper = self._store.bounded_fragment(dimension)
            contribution_lower, contribution_upper = contribution_interval(
                self._metric, value_lower, value_upper, query[dimension], dimension=dimension
            )
            cost.charge_arithmetic(2 * cardinality * self._metric.arithmetic_ops_per_value())
            lower_scores += contribution_lower
            upper_scores += contribution_upper
        return lower_scores, upper_scores

    def _filter_bounds_batch(
        self, queries: "list[np.ndarray]"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query score bounds from a single shared approximation pass.

        Each dimension's value bounds are materialised from the cell
        boundaries once and consumed by every query of the batch; the
        per-query accumulation applies the same operations in the same order
        as :meth:`_filter_bounds`, so the resulting bounds are bitwise
        identical to running the single-query filter per query.
        """
        cost = self._store.cost
        cardinality = self._store.cardinality
        batch_size = len(queries)
        lower_scores = np.zeros((batch_size, cardinality), dtype=np.float64)
        upper_scores = np.zeros((batch_size, cardinality), dtype=np.float64)
        for dimension in range(self._store.dimensionality):
            value_lower, value_upper = self._store.bounded_fragment(dimension)
            for index, query in enumerate(queries):
                contribution_lower, contribution_upper = contribution_interval(
                    self._metric, value_lower, value_upper, query[dimension], dimension=dimension
                )
                cost.charge_arithmetic(2 * cardinality * self._metric.arithmetic_ops_per_value())
                lower_scores[index] += contribution_lower
                upper_scores[index] += contribution_upper
        return lower_scores, upper_scores

    def _select_candidates(
        self, lower_scores: np.ndarray, upper_scores: np.ndarray, k: int
    ) -> np.ndarray:
        """OIDs that may still belong to the top k given the score bounds."""
        cost = self._store.cost
        count = lower_scores.shape[0]
        cost.charge_heap(count)
        cost.charge_comparisons(count)
        # The test direction follows the accumulated bounds, not the metric
        # kind (EuclideanSimilarity accumulates distance-valued intervals).
        if not self._metric.contributions_are_distances:
            kappa = float(np.partition(lower_scores, count - k)[count - k])
            mask = upper_scores >= kappa
        else:
            kappa = float(np.partition(upper_scores, k - 1)[k - 1])
            mask = lower_scores <= kappa
        return np.nonzero(mask)[0].astype(np.int64)

    def _refine(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact scores of the filter survivors."""
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        exact = self._store.exact
        vectors = exact.gather_matrix(candidates)
        scores = self._metric.score(vectors, query)
        exact.cost.charge_arithmetic(vectors.size * self._metric.arithmetic_ops_per_value())
        best = self._metric.best_first(scores)[:k]
        return candidates[best], scores[best]
