"""Comparator methods BOND is evaluated against.

* :class:`~repro.baselines.vafile.VAFile` — the Vector-Approximation file of
  Weber et al.: a full sequential scan over 8-bit approximations of every
  vector followed by exact refinement of the candidates (Section 7.4 /
  Table 4 compare BOND-on-approximations against it);
* :class:`~repro.baselines.rtree.RTreeIndex` — a bulk-loaded R-tree with
  best-first k-NN search, the representative space-partitioning method whose
  breakdown with growing dimensionality motivates the paper (Section 2);
* :class:`~repro.baselines.simnet.SimilarityNetwork` — the precomputed k-NN
  graph ("similarity network") straw-man of Section 2, usable only for
  queries that are members of the indexed collection and only up to the
  precomputed neighbourhood size.
"""

from repro.baselines.vafile import VAFile
from repro.baselines.rtree import RTreeIndex
from repro.baselines.simnet import SimilarityNetwork

__all__ = ["RTreeIndex", "SimilarityNetwork", "VAFile"]
