"""Backwards-compatibility helpers for the keyword-only API retrofit.

The unified :mod:`repro.api` facade standardised every searcher constructor
on a keyword-only configuration surface (``BondSearcher(store, metric=...,
bound=...)``).  The historical positional shapes (``BondSearcher(store,
metric, bound)``) keep working through the shim below, which maps the legacy
positionals onto their keyword parameters and emits a
:class:`DeprecationWarning` so first-party call sites can be kept clean (CI
runs the examples with deprecation warnings turned into errors).
"""

from __future__ import annotations

import warnings
from typing import Sequence


def apply_legacy_positionals(
    signature: str,
    legacy: tuple,
    names: Sequence[str],
    values: tuple,
) -> tuple:
    """Merge legacy positional arguments into their keyword-only slots.

    Parameters
    ----------
    signature:
        Human-readable replacement signature shown in the warning, e.g.
        ``"BondSearcher(store, *, metric=..., bound=...)"``.
    legacy:
        The ``*legacy`` tuple captured by the constructor.
    names:
        Keyword parameter names the legacy positionals map onto, in order.
    values:
        The current keyword values, aligned with ``names``.

    Returns
    -------
    ``values`` with the legacy positionals merged in (always a tuple of
    ``len(names)`` entries, so single-parameter callers unpack ``(metric,)``).
    """
    if not legacy:
        return tuple(values)
    if len(legacy) > len(names):
        raise TypeError(
            f"too many positional arguments; the supported signature is {signature}"
        )
    warnings.warn(
        f"passing {', '.join(repr(name) for name in names[: len(legacy)])} positionally "
        f"is deprecated; use {signature}",
        DeprecationWarning,
        stacklevel=3,
    )
    merged = list(values)
    for position, value in enumerate(legacy):
        if merged[position] is not None:
            raise TypeError(
                f"{names[position]!r} was given both positionally and as a keyword"
            )
        merged[position] = value
    return tuple(merged)
